"""Interprocedural unit rules (RPR810–RPR814), the dimflow family.

The expression-local RPR801/802 stop at the call boundary: a
``*_seconds`` value passed into a parameter named ``budget`` loses its
unit at the call and every downstream mix-up goes dark.  This family
consumes the :class:`~repro.lint.dimflow.fixpoint.UnitAnalysis`
fixpoint — one unit signature per function, closed over the project
call graph — and flags the mismatches only whole-program reasoning
can see:

* **RPR810** — a resolved call binds an argument whose inferred unit
  disagrees with the callee parameter's *declared* unit (name suffix
  or ``repro.units.UNIT_PARAMS`` entry).  The finding prints the full
  propagation path, RPR601-style, and carries it as ``source_line``
  so baselines key on the chain;
* **RPR811** — one function returns two different known units from
  different branches;
* **RPR812** — a class attribute accumulates conflicting units from
  different assignment sites (or its own name suffix);
* **RPR813** — arithmetic/comparison between two inferred units the
  local rules could not see (at least one side flows from a parameter
  or a call), plus augmented ``+=``/``-=`` stores, which the
  expression-local rules never visit;
* **RPR814** — a telemetry emit field whose name carries a unit
  suffix but whose value's inferred unit disagrees.

Every rule treats *unknown* (no evidence) and ``⊤`` (conflicting
evidence) as silence, and dimensionless (literals, same-unit ratios)
as compatible with everything — the family only speaks when two
concrete dimensions provably disagree.  Scoped to the library layers,
like RPR801/802.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.lint.dimflow.algebra import unit_of_name
from repro.lint.dimflow.model import TOP_UNIT, UnitTerm
from repro.lint.engine import Finding
from repro.lint.rules.base import Rule
from repro.lint.rules.dimensional import _SRC_LAYERS
from repro.units import UNIT_PARAMS, UNIT_RETURNS

__all__ = [
    "ArgumentUnitMismatchRule",
    "InconsistentReturnUnitsRule",
    "ConflictingAttributeUnitsRule",
    "InferredUnitMixRule",
    "TelemetryFieldUnitRule",
]


def _concrete(unit: Optional[str]) -> bool:
    """A dimension the family may argue about: known, non-empty, not ⊤."""
    return bool(unit) and unit != TOP_UNIT


class _UnitFlowRule(Rule):
    """Shared scaffolding: hold findings, filter to library layers."""

    family = "dimflow"
    severity = "error"
    corpus_level = True
    needs_graph = True
    needs_units = True

    def __init__(self) -> None:
        self._findings: List[Finding] = []

    def consume_units(self, analysis) -> None:
        self._collect(analysis)

    def _collect(self, analysis) -> None:
        raise NotImplementedError

    def _src_keys(self, analysis) -> List[str]:
        return [
            key
            for key in analysis.keys()
            if analysis.node_layer(key) in _SRC_LAYERS
        ]

    def _emit(
        self,
        path: str,
        line: int,
        message: str,
        source_line: str,
        col: int = 0,
    ) -> None:
        self._findings.append(
            Finding(
                rule=self.id,
                severity=self.severity,
                path=path,
                line=line,
                col=col,
                message=message,
                source_line=source_line,
            )
        )

    def finalize(self) -> Iterator[Finding]:
        findings, self._findings = self._findings, []
        return iter(findings)


class ArgumentUnitMismatchRule(_UnitFlowRule):
    """RPR810: argument unit disagrees with the parameter's contract."""

    id = "RPR810"
    title = "argument unit mismatches the parameter's declared unit"

    def _collect(self, analysis) -> None:
        for key in self._src_keys(analysis):
            path = analysis.node_path(key)
            for call, callee_key, is_ctor in analysis.call_edges(key):
                if callee_key is not None:
                    self._check_resolved(
                        analysis, key, path, call, callee_key, is_ctor
                    )
                else:
                    self._check_table(analysis, key, path, call)

    def _check_resolved(
        self, analysis, key: str, path: str, call, callee_key: str, is_ctor
    ) -> None:
        signature = analysis.signature(callee_key)
        if signature.polymorphic:
            return
        declared = set(signature.declared)
        for param, term in analysis.argument_bindings(
            key, call, callee_key, is_ctor
        ):
            if param not in declared:
                continue
            expected = signature.param_unit(param)
            actual = analysis.evaluate(key, term)
            if not (
                _concrete(expected)
                and _concrete(actual)
                and actual != expected
            ):
                continue
            witness = analysis.flow_witness(key, term, actual)
            chain = analysis.render_path(witness + (callee_key,))
            callee_label = analysis.node_label(callee_key)
            self._emit(
                path,
                call.lineno,
                f"parameter '{param}' of {callee_label} is declared "
                f"{expected} but receives {actual} via: {chain}",
                source_line=f"{param}:{chain}",
            )

    def _check_table(self, analysis, key: str, path: str, call) -> None:
        """Calls into ``UNIT_PARAMS``-annotated callables the corpus
        does not contain (the table lists leading parameters in
        signature order, so positional binding aligns from index 0)."""
        canonical = call.canonical or call.dotted or ""
        table = UNIT_PARAMS.get(canonical)
        if table is None:
            return
        order = list(table)
        bindings: List[Tuple[str, Optional[UnitTerm]]] = []
        for index, term in enumerate(call.args):
            if index < len(order):
                bindings.append((order[index], term))
        for name, term in call.kwargs:
            if name in table:
                bindings.append((name, term))
        for param, term in bindings:
            expected = table[param]
            actual = analysis.evaluate(key, term)
            if not (
                _concrete(expected)
                and _concrete(actual)
                and actual != expected
            ):
                continue
            witness = analysis.flow_witness(key, term, actual)
            chain = analysis.render_path(witness) + f" -> {canonical}"
            self._emit(
                path,
                call.lineno,
                f"parameter '{param}' of {canonical} is declared "
                f"{expected} but receives {actual} via: {chain}",
                source_line=f"{param}:{chain}",
            )


class InconsistentReturnUnitsRule(_UnitFlowRule):
    """RPR811: one function returns two different known units."""

    id = "RPR811"
    title = "function returns inconsistent units across branches"

    def _collect(self, analysis) -> None:
        for key in self._src_keys(analysis):
            signature = analysis.signature(key)
            if signature.polymorphic:
                continue
            if analysis.canonical_name(key) in UNIT_RETURNS:
                continue  # the declared contract wins; sites obey it
            facts = analysis.facts(key)
            if facts is None:
                continue
            seen: List[Tuple[str, int]] = []
            for site in facts.returns:
                unit = analysis.evaluate(key, site.term)
                if not _concrete(unit):
                    continue
                if not any(unit == existing for existing, _ in seen):
                    seen.append((unit, site.lineno))
            if len(seen) < 2:
                continue
            rendered = ", ".join(
                f"{unit} (line {lineno})" for unit, lineno in seen
            )
            self._emit(
                analysis.node_path(key),
                seen[1][1],
                f"{analysis.canonical_name(key)} returns {rendered}: "
                "branches disagree about the result's unit, so no caller "
                "can use it safely",
                source_line="return:" + ",".join(u for u, _ in seen),
            )


class ConflictingAttributeUnitsRule(_UnitFlowRule):
    """RPR812: a class attribute is assigned conflicting units."""

    id = "RPR812"
    title = "attribute assigned conflicting units"

    def _collect(self, analysis) -> None:
        for (class_name, attr), evidence in sorted(
            analysis.attribute_evidence().items()
        ):
            sites = [
                item
                for item in evidence
                if _concrete(item.unit) and item.layer in _SRC_LAYERS
            ]
            distinct: List = []
            for item in sites:
                if not any(item.unit == kept.unit for kept in distinct):
                    distinct.append(item)
            if len(distinct) < 2:
                continue
            first, second = distinct[0], distinct[1]
            self._emit(
                second.path,
                second.lineno,
                f"attribute {class_name}.{attr} carries {second.unit} here "
                f"({second.label}) but {first.unit} at "
                f"{first.path}:{first.lineno} ({first.label}); one of the "
                "writers is converting units implicitly",
                source_line=f"{class_name}.{attr}",
            )


class InferredUnitMixRule(_UnitFlowRule):
    """RPR813: arithmetic/comparison mixes interprocedurally-inferred
    units the local rules could not see."""

    id = "RPR813"
    title = "arithmetic/comparison mixes inferred units"

    def _collect(self, analysis) -> None:
        for key in self._src_keys(analysis):
            facts = analysis.facts(key)
            if facts is None or analysis.signature(key).polymorphic:
                continue
            path = analysis.node_path(key)
            for check in facts.checks:
                left = analysis.evaluate(key, check.left)
                right = analysis.evaluate(key, check.right)
                if not (
                    _concrete(left)
                    and _concrete(right)
                    and left != right
                ):
                    continue
                detail = self._flow_detail(analysis, key, check, left, right)
                self._emit(
                    path,
                    check.lineno,
                    f"`{check.op}` between {left} and {right}{detail}; the "
                    "local rules cannot see this mix — one operand's unit "
                    "was inferred through the call graph",
                    source_line=f"{check.op}:{left}:{right}",
                    col=check.col,
                )

    def _flow_detail(
        self, analysis, key: str, check, left: str, right: str
    ) -> str:
        for term, unit in ((check.left, left), (check.right, right)):
            witness = analysis.flow_witness(key, term, unit)
            if len(witness) > 1:
                return f" ({unit} flows via: {analysis.render_path(witness)})"
        return ""


class TelemetryFieldUnitRule(_UnitFlowRule):
    """RPR814: emit-field name suffix disagrees with the value's unit."""

    id = "RPR814"
    title = "telemetry field name contradicts the value's unit"

    def _collect(self, analysis) -> None:
        for key in self._src_keys(analysis):
            facts = analysis.facts(key)
            if facts is None:
                continue
            path = analysis.node_path(key)
            for emit in facts.emit_fields:
                expected = unit_of_name(emit.fieldname)
                actual = analysis.evaluate(key, emit.term)
                if not (
                    _concrete(expected)
                    and _concrete(actual)
                    and actual != expected
                ):
                    continue
                self._emit(
                    path,
                    emit.lineno,
                    f"event '{emit.event}' field '{emit.fieldname}' promises "
                    f"{expected} by its name but the emitted value is "
                    f"{actual}; rename the field or convert the value "
                    "(readers trust the suffix)",
                    source_line=f"{emit.event}.{emit.fieldname}",
                )
