"""Transitive-determinism rules (RPR601–RPR604).

The syntactic determinism rules (RPR101–RPR104) only see a sink when
it sits *inside* a ``sim``/``memory``/``stream``/``core`` file.  A
helper one hop away — a root-level utility module, a shared formatter
— can read the wall clock on the model's behalf without tripping any
of them.  These rules close that hole: every function in a
deterministic layer is a reachability root, and any sink the project
call graph can walk to from there is a finding, anchored at the sink
with the full call path printed.

Division of labour with RPR10x (one finding per sink, never two):

* RPR601/603/604 skip sinks whose own file is in a deterministic
  layer — those are RPR101/103/104's, syntactically;
* RPR602 owns a disjoint sink set (OS entropy: ``os.urandom``,
  ``uuid.uuid1/uuid4``, ``secrets.*``) that RPR102's global-RNG
  tables never covered, so it fires wherever the sink lives.

Findings carry the rendered shortest call path as their
``source_line``, so baselines key on *which chain* reaches the sink
and survive unrelated line shifts.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.lint.engine import Finding
from repro.lint.rules.base import Rule
from repro.lint.rules.determinism import DETERMINISTIC_LAYERS, _WALL_CLOCK

__all__ = [
    "TransitiveWallClockRule",
    "TransitiveEntropyRule",
    "TransitiveEnvironmentRule",
    "TransitiveHashRule",
]

#: OS-entropy sources (disjoint from RPR102's global-RNG tables).
_OS_ENTROPY = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.choice",
        "secrets.randbelow",
        "secrets.randbits",
    }
)


class _TransitiveRule(Rule):
    """Shared reachability machinery for the RPR6xx family.

    Subclasses implement :meth:`_sinks` to name the sink sites inside
    one reachable function; this base walks the graph and renders
    paths.
    """

    corpus_level = True
    needs_graph = True

    #: When False, sinks inside deterministic-layer files are skipped
    #: (the syntactic RPR10x rule already owns them).
    flag_inside_deterministic = False

    def __init__(self) -> None:
        self._findings: List[Finding] = []

    def consume_graph(self, graph) -> None:
        roots = [
            node.key for node in graph.nodes_in_layers(DETERMINISTIC_LAYERS)
        ]
        paths = graph.reachable_from(roots)
        seen: Dict[Tuple[str, int], bool] = {}
        for key in sorted(paths):
            node = graph.node(key)
            if (
                not self.flag_inside_deterministic
                and node.layer in DETERMINISTIC_LAYERS
            ):
                continue
            for line, detail in self._sinks(node):
                if (node.path, line) in seen:
                    continue
                seen[(node.path, line)] = True
                chain = graph.render_path(paths[key])
                self._findings.append(
                    Finding(
                        rule=self.id,
                        severity=self.severity,
                        path=node.path,
                        line=line,
                        col=0,
                        message=(
                            f"{detail} is reachable from the deterministic "
                            f"layers via: {chain}"
                        ),
                        source_line=chain,
                    )
                )

    def _sinks(self, node) -> Iterator[Tuple[int, str]]:
        """Yield ``(lineno, description)`` for each sink in ``node``."""
        return iter(())

    def finalize(self) -> Iterator[Finding]:
        findings, self._findings = self._findings, []
        return iter(findings)


class TransitiveWallClockRule(_TransitiveRule):
    """RPR601: wall-clock sink reachable from a deterministic layer."""

    id = "RPR601"
    title = "wall-clock reachable from a deterministic layer"
    family = "transitive-determinism"
    severity = "error"

    def _sinks(self, node) -> Iterator[Tuple[int, str]]:
        for call in node.summary.calls:
            if call.canonical in _WALL_CLOCK:
                yield call.lineno, f"{call.canonical}()"


class TransitiveEntropyRule(_TransitiveRule):
    """RPR602: OS-entropy source reachable from a deterministic layer."""

    id = "RPR602"
    title = "OS entropy reachable from a deterministic layer"
    family = "transitive-determinism"
    severity = "error"
    # RPR102's tables do not cover OS entropy, so this rule owns these
    # sinks everywhere — deterministic layers included.
    flag_inside_deterministic = True

    def _sinks(self, node) -> Iterator[Tuple[int, str]]:
        for call in node.summary.calls:
            if call.canonical in _OS_ENTROPY:
                yield call.lineno, f"{call.canonical}()"


class TransitiveEnvironmentRule(_TransitiveRule):
    """RPR603: environment read reachable from a deterministic layer."""

    id = "RPR603"
    title = "environment read reachable from a deterministic layer"
    family = "transitive-determinism"
    severity = "error"

    def _sinks(self, node) -> Iterator[Tuple[int, str]]:
        for lineno in node.summary.env_reads:
            yield lineno, "an os.environ/os.getenv read"


class TransitiveHashRule(_TransitiveRule):
    """RPR604: built-in ``hash()`` reachable from a deterministic layer."""

    id = "RPR604"
    title = "built-in hash() reachable from a deterministic layer"
    family = "transitive-determinism"
    severity = "error"

    def _sinks(self, node) -> Iterator[Tuple[int, str]]:
        for lineno in node.summary.hash_calls:
            yield lineno, "a built-in hash() call"
