"""Memo-safety rules (RPR201–RPR202).

PR 3's caches are sound only because their keys are immutable once
built: the :class:`~repro.memory.equilibrium.EquilibriumSolver` and
:class:`~repro.sim.engine.RateCalculator` memos key on demand
signatures computed at construction/dispatch, with **no invalidation
path** — a field that feeds a signature and is later reassigned would
silently serve stale snapshots.  These rules freeze that contract in
the source.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.engine import FileContext, Finding
from repro.lint.rules.base import Rule, dotted_name

__all__ = ["FrozenMutationRule", "MemoFieldMutationRule", "MEMO_KEY_FIELDS"]

#: Field names treated as memo-signature inputs on ``__slots__``
#: classes: anything spelled ``_sig*`` or ``_cohort*`` plus the
#: dispatch-cached derived fields of
#: :class:`~repro.sim.engine.RunningTask`.
MEMO_KEY_FIELDS = frozenset({"demand", "total_units"})

_CONSTRUCTORS = frozenset({"__init__", "__post_init__"})
#: Methods allowed to rebuild internal state wholesale: construction
#: plus unpickling (which reconstructs, never mutates live state).
_REBUILD_METHODS = _CONSTRUCTORS | {"__getstate__", "__setstate__"}


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        name = dotted_name(decorator.func)
        if name not in ("dataclass", "dataclasses.dataclass"):
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "frozen"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


def _slot_names(node: ast.ClassDef) -> Optional[Set[str]]:
    """Names in the class's ``__slots__``, or None if it has none."""
    for statement in node.body:
        targets: List[ast.expr] = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
            value = statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets = [statement.target]
            value = statement.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                names: Set[str] = set()
                if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                    for element in value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            names.add(element.value)
                return names
    return None


def _methods(node: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    for statement in node.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield statement


class FrozenMutationRule(Rule):
    """RPR201: frozen dataclass mutated outside construction.

    ``object.__setattr__(self, ...)`` is the only way to write to a
    frozen dataclass; inside ``__init__``/``__post_init__`` (and the
    pickle rebuild hooks) it is the documented idiom, anywhere else it
    is a mutation of an object the rest of the system assumes
    immutable — exactly what memo keys and content-addressed cache
    hashes cannot survive.  A deliberate write-once lazy memo attach
    can be annotated with ``# repro: lint-ok RPR201 -- reason``.
    """

    id = "RPR201"
    title = "frozen dataclass mutated outside construction"
    family = "memo-safety"
    severity = "error"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for class_node in ast.walk(ctx.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            if not _is_frozen_dataclass(class_node):
                continue
            for method in _methods(class_node):
                if method.name in _REBUILD_METHODS:
                    continue
                for node in ast.walk(method):
                    if (
                        isinstance(node, ast.Call)
                        and dotted_name(node.func) == "object.__setattr__"
                        and node.args
                        and isinstance(node.args[0], ast.Name)
                        and node.args[0].id == "self"
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"frozen dataclass {class_node.name!r} mutated in "
                            f"{method.name}(); frozen instances may only be "
                            "written during __init__/__post_init__ (memo "
                            "keys and cache hashes assume they never change)",
                        )


class MemoFieldMutationRule(Rule):
    """RPR202: memo-signature field of a ``__slots__`` class reassigned.

    On a ``__slots__`` class, slots named ``_sig*`` (signature tuple
    entries), ``_cohort*`` (rate-cohort keys derived from them), or
    listed in :data:`MEMO_KEY_FIELDS` (``demand``, ``total_units``)
    feed the rate-snapshot/equilibrium memo keys and the cohort table.
    They are computed once at dispatch; reassigning one after
    ``__init__`` would let a cached snapshot describe a population
    that no longer exists — or strand a task in a cohort whose key no
    longer matches its rate.
    """

    id = "RPR202"
    title = "memo-signature field assigned after construction"
    family = "memo-safety"
    severity = "error"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for class_node in ast.walk(ctx.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            slots = _slot_names(class_node)
            if slots is None:
                continue
            protected = {
                name
                for name in slots
                if name.startswith("_sig")
                or name.startswith("_cohort")
                or name in MEMO_KEY_FIELDS
            }
            if not protected:
                continue
            for method in _methods(class_node):
                if method.name in _CONSTRUCTORS:
                    continue
                yield from self._assignments(ctx, class_node, method, protected)

    def _assignments(
        self,
        ctx: FileContext,
        class_node: ast.ClassDef,
        method: ast.FunctionDef,
        protected: Set[str],
    ) -> Iterator[Finding]:
        for node in ast.walk(method):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr in protected
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{class_node.name}.{target.attr} feeds a memo "
                        f"signature but is assigned in {method.name}(); "
                        "signature fields are write-once at dispatch "
                        "(the snapshot memo has no invalidation path)",
                    )
