"""Pool-safety rules (RPR701–RPR703).

Everything crossing the ``ProcessPoolExecutor`` boundary runs in a
child process: the callable must pickle (top-level function, not a
lambda, closure, or method), and the code it reaches must not rely on
parent-process state — module-global mutation is invisible to the
parent (and to the other workers), and telemetry emitted from a
worker bypasses the executor's single-writer channel, interleaving
corrupt lines into the JSONL log.

Worker-reachable code is discovered from the graph: the resolved
first argument of every ``pool.submit``/``pool.map`` call site on a
``ProcessPoolExecutor`` receiver, plus every function named by a
module-level ``POOL_BOUNDARY = ("name", ...)`` tuple — the explicit
annotation for boundaries the resolver cannot see (both
``runtime/parallel.py`` and the lint engine itself carry one).
Unresolvable submissions (dynamic dispatch, partials) produce no
finding: the family under-approximates rather than guesses.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.lint.engine import Finding
from repro.lint.rules.base import Rule

__all__ = [
    "NonPicklableSubmissionRule",
    "WorkerGlobalMutationRule",
    "WorkerTelemetryRule",
]

#: The telemetry implementation itself (its ``emit`` method is the
#: sanctioned channel, not a violation of it).
_SANCTIONED_MODULES = frozenset({"repro.runtime.telemetry"})


class NonPicklableSubmissionRule(Rule):
    """RPR701: pool submission that cannot cross the process boundary."""

    id = "RPR701"
    title = "pool submission is not a top-level function"
    family = "pool-safety"
    severity = "error"
    corpus_level = True
    needs_graph = True

    def __init__(self) -> None:
        self._findings: List[Finding] = []

    def consume_graph(self, graph) -> None:
        for site in graph.pool_call_sites():
            site_node = graph.node(site.node_key)
            call = site.call
            if not call.args:
                continue
            first = call.args[0]
            if first.kind == "lambda":
                self._add(
                    site_node, call.lineno,
                    f"a lambda is submitted to pool.{site.method}(); "
                    "lambdas do not pickle — hoist it to a module-level "
                    "function",
                )
                continue
            if first.kind not in ("name", "attribute"):
                continue  # dynamic/unresolvable: not over-reported
            target = graph.resolve_argument(site.node_key, first)
            if target is None:
                continue
            if not target.summary.is_toplevel:
                shape = (
                    "a method" if target.summary.class_name else
                    "a nested function"
                )
                self._add(
                    site_node, call.lineno,
                    f"{target.label()} is submitted to pool.{site.method}() "
                    f"but is {shape}; only top-level functions pickle "
                    "across the process-pool boundary",
                )

    def _add(self, node, lineno: int, message: str) -> None:
        self._findings.append(
            Finding(
                rule=self.id,
                severity=self.severity,
                path=node.path,
                line=lineno,
                col=0,
                message=message,
                # Fingerprint on the submitting function, not the line
                # number, so baselines survive unrelated edits.
                source_line=f"pool submission in {node.label()}",
            )
        )

    def finalize(self) -> Iterator[Finding]:
        findings, self._findings = self._findings, []
        return iter(findings)


class _WorkerReachableRule(Rule):
    """Shared machinery: walk everything reachable from worker entries."""

    corpus_level = True
    needs_graph = True

    def __init__(self) -> None:
        self._findings: List[Finding] = []

    def consume_graph(self, graph) -> None:
        paths = graph.reachable_from(graph.worker_entry_keys())
        for key in sorted(paths):
            node = graph.node(key)
            if node.namespace in _SANCTIONED_MODULES:
                continue
            for lineno, message in self._violations(node):
                chain = graph.render_path(paths[key])
                self._findings.append(
                    Finding(
                        rule=self.id,
                        severity=self.severity,
                        path=node.path,
                        line=lineno,
                        col=0,
                        message=f"{message} (worker-reachable via: {chain})",
                        source_line=chain,
                    )
                )

    def _violations(self, node) -> Iterator[Tuple[int, str]]:
        return iter(())

    def finalize(self) -> Iterator[Finding]:
        findings, self._findings = self._findings, []
        return iter(findings)


class WorkerGlobalMutationRule(_WorkerReachableRule):
    """RPR702: worker-reachable code mutates a module global."""

    id = "RPR702"
    title = "worker-reachable code mutates module globals"
    family = "pool-safety"
    severity = "error"

    def _violations(self, node) -> Iterator[Tuple[int, str]]:
        for name, lineno in node.summary.global_writes:
            yield lineno, (
                f"module global {name!r} is written inside pool-worker "
                "code; the write is invisible to the parent process and "
                "the other workers — thread state through arguments and "
                "return values instead"
            )


class WorkerTelemetryRule(_WorkerReachableRule):
    """RPR703: worker-reachable code emits telemetry directly."""

    id = "RPR703"
    title = "worker-reachable code emits telemetry"
    family = "pool-safety"
    severity = "error"

    def _violations(self, node) -> Iterator[Tuple[int, str]]:
        for lineno in node.summary.emit_calls:
            yield lineno, (
                "telemetry is emitted inside pool-worker code; workers "
                "must return data and let the parent's single "
                "TelemetryWriter emit it, or concurrent appends interleave "
                "in the JSONL log"
            )
