"""API-hygiene rules (RPR501–RPR502).

The package advertises its public surface through ``__all__`` (the
public-API test walks it) and layers its imports one way: the
deterministic model layers at the bottom, orchestration (``runtime``,
``cli``) and tooling (``lint``) on top.  A ``sim`` module importing
``runtime`` would let wall-clock measurement types leak into the
simulator — and create exactly the import cycles that made the seed's
monolith hard to split.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding
from repro.lint.rules.base import Rule

__all__ = ["MissingAllRule", "LayerImportRule"]

#: Layers that must never import from the orchestration layers.
_LOWER_LAYERS = frozenset(
    {"analysis", "core", "memory", "sim", "stream", "workloads"}
)
#: Module prefixes that constitute the orchestration/tooling layers.
_UPPER_PREFIXES = ("repro.runtime", "repro.cli", "repro.lint")


class MissingAllRule(Rule):
    """RPR501: public ``repro`` module without an ``__all__``.

    ``__all__`` is the contract the public-API test and the docs
    enforce; a module without one exports whatever it happened to
    import, and re-export drift goes unnoticed.  ``__main__`` is
    exempt (it is an entry point, not an API).
    """

    id = "RPR501"
    title = "public module missing __all__"
    family = "api-hygiene"
    severity = "error"
    autofixable = True
    layers = frozenset(
        {"analysis", "core", "lint", "memory", "root", "runtime", "sim",
         "stream", "workloads"}
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        stem = ctx.path.stem
        if stem.startswith("__") and stem != "__init__":
            return
        for node in ctx.tree.body:
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return
        yield Finding(
            rule=self.id,
            severity=self.severity,
            path=ctx.display_path,
            line=1,
            col=1,
            message=(
                "public module defines no __all__; declare the exported "
                "names (an empty list is fine for internal modules)"
            ),
            source_line=ctx.line_text(1),
        )


def _is_type_checking_test(node: ast.expr) -> bool:
    return (isinstance(node, ast.Name) and node.id == "TYPE_CHECKING") or (
        isinstance(node, ast.Attribute) and node.attr == "TYPE_CHECKING"
    )


def _runtime_nodes(node: ast.AST) -> Iterator[ast.AST]:
    """Walk the tree, skipping ``if TYPE_CHECKING:`` bodies.

    Type-only imports create no runtime dependency; they are the
    sanctioned way for a lower layer to *annotate* an upper-layer type
    without importing it.
    """
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.If) and _is_type_checking_test(child.test):
            for orelse in child.orelse:
                yield orelse
                yield from _runtime_nodes(orelse)
            continue
        yield child
        yield from _runtime_nodes(child)


class LayerImportRule(Rule):
    """RPR502: deterministic layer imports an orchestration layer.

    Imports under ``if TYPE_CHECKING:`` are exempt — they vanish at
    runtime and exist exactly to annotate upper-layer types without
    depending on them.
    """

    id = "RPR502"
    title = "lower layer imports runtime/cli/lint"
    family = "api-hygiene"
    severity = "error"
    layers = _LOWER_LAYERS

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in _runtime_nodes(ctx.tree):
            modules = []
            if isinstance(node, ast.Import):
                modules = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                modules = [node.module]
            for module in modules:
                if any(
                    module == prefix or module.startswith(prefix + ".")
                    for prefix in _UPPER_PREFIXES
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"layer {ctx.layer!r} imports {module}: the "
                        "deterministic model layers must not depend on "
                        "orchestration/tooling (imports flow strictly "
                        "upward; see docs/static_analysis.md)",
                    )
