"""Telemetry-integrity rules (RPR301–RPR302).

The telemetry contract is bidirectional: every event a program emits
must be registered in
:data:`repro.runtime.telemetry.EVENT_SCHEMAS` (else
``validate_record`` rejects it at the first consumer), and every
registered schema must have an emit site (else it is dead weight that
``docs/telemetry.md`` and downstream dashboards still advertise).
``tests/runtime/test_telemetry_schema.py`` checks the first direction
dynamically for records a test run happens to produce; these rules
check **both** directions statically, for every emit site in the
corpus.

An *emit site* is a dict literal carrying an ``"event"`` key with a
string value (the shape every builder in
:mod:`repro.runtime.telemetry` uses); an ``event="..."`` keyword on a
``read_telemetry`` call is a *filter site* — it, too, must name a
registered event, but it does not count as emitting one.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import FileContext, Finding
from repro.lint.rules.base import Rule, call_name

__all__ = ["UnregisteredEventRule", "OrphanSchemaRule", "registered_events"]


def registered_events() -> Set[str]:
    """Event names registered in the live ``EVENT_SCHEMAS``."""
    from repro.runtime.telemetry import EVENT_SCHEMAS

    return set(EVENT_SCHEMAS)


def _emit_sites(tree: ast.Module) -> Iterator[Tuple[ast.AST, str, str]]:
    """Yield ``(node, event_name, kind)`` for every static event reference.

    ``kind`` is ``"emit"`` for dict-literal sites (records that will be
    written) and ``"filter"`` for ``event=`` keyword references (reads).
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "event"
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    yield value, value.value, "emit"
        elif isinstance(node, ast.Call) and call_name(node) == "read_telemetry":
            for keyword in node.keywords:
                if (
                    keyword.arg == "event"
                    and isinstance(keyword.value, ast.Constant)
                    and isinstance(keyword.value.value, str)
                ):
                    yield keyword.value, keyword.value.value, "filter"


class UnregisteredEventRule(Rule):
    """RPR301: event-name literal not present in ``EVENT_SCHEMAS``."""

    id = "RPR301"
    title = "event name not registered in EVENT_SCHEMAS"
    family = "telemetry"
    severity = "error"

    def __init__(self, schemas: Optional[Set[str]] = None) -> None:
        self._schemas = set(schemas) if schemas is not None else None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        known = self._schemas if self._schemas is not None else registered_events()
        for node, name, kind in _emit_sites(ctx.tree):
            if name not in known:
                verb = "emitted" if kind == "emit" else "filtered on"
                yield self.finding(
                    ctx,
                    node,
                    f"event {name!r} is {verb} here but not registered in "
                    "EVENT_SCHEMAS; register it (and document it in "
                    "docs/telemetry.md) or the first validate_record call "
                    "will reject it",
                )


class OrphanSchemaRule(Rule):
    """RPR302: registered schema with no static emit site in the corpus.

    Corpus-level: the engine feeds every file's
    :class:`~repro.lint.graph.summary.ModuleSummary` (whose
    ``event_sites`` mirror :func:`_emit_sites`) through
    :meth:`consume_summary` — in the parent process, so ``--jobs``
    fan-out cannot lose the accumulated state — and the registry
    comparison happens in :meth:`finalize`.  To avoid screaming on
    partial corpora (``repro lint src/repro/units.py``), the check
    only arms itself when the corpus contains the ``EVENT_SCHEMAS``
    definition itself — or always, when a schema set was injected
    explicitly (tests and fixture corpora do this).
    """

    id = "RPR302"
    title = "registered event schema never emitted"
    family = "telemetry"
    severity = "error"
    corpus_level = True

    def __init__(self, schemas: Optional[Set[str]] = None) -> None:
        self._schemas = set(schemas) if schemas is not None else None
        self._emitted: Dict[str, str] = {}
        self._defining_files: List[str] = []

    def consume_summary(self, summary) -> None:
        for name, kind, _lineno in summary.event_sites:
            if kind == "emit":
                self._emitted.setdefault(name, summary.path)
        if summary.defines_event_schemas:
            self._defining_files.append(summary.path)

    def finalize(self) -> Iterator[Finding]:
        if self._schemas is not None:
            known = self._schemas
            anchor = "<injected schemas>"
        elif self._defining_files:
            known = registered_events()
            anchor = self._defining_files[0]
        else:
            return  # partial corpus: the registry itself was not scanned
        for name in sorted(known - set(self._emitted)):
            yield Finding(
                rule=self.id,
                severity=self.severity,
                path=anchor,
                line=0,
                col=0,
                message=(
                    f"schema {name!r} is registered in EVENT_SCHEMAS but no "
                    "scanned file emits it (no dict literal with "
                    f'"event": "{name}"); delete the schema or wire up '
                    "its emitter"
                ),
            )
