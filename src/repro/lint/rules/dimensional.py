"""Dimensional-consistency rules (RPR801–RPR802).

The codebase carries two base dimensions (seconds and bytes) plus the
derived counts the model works in (cycles, tasks, cache lines).  A
latency accidentally added to a footprint type-checks — both are
floats/ints — and produces a number that is silently wrong by nine
orders of magnitude.  These rules run a deliberately conservative
unit inference over every expression and flag only *known vs known
different*:

* a unit is assigned to a name/attribute by the naming convention in
  :data:`repro.units.UNIT_SUFFIXES` (``_seconds``, ``_bytes``, ...),
  to a constant reference via :data:`repro.units.UNIT_CONSTANTS`
  (``46.3 * NANOSECONDS`` is seconds), and to a call via
  :data:`repro.units.UNIT_RETURNS` (``mebibytes(2)`` is bytes);
* literals are unit-polymorphic (``x_seconds + 1`` is fine);
* multiplication by a numeric literal preserves the other operand's
  unit; any other multiplication, and all division, yields *unknown*
  (``bytes / seconds`` is a legitimate rate);
* only ``+``/``-`` between two *different known* units (RPR801) and
  comparisons between two *different known* units (RPR802) fire.

Scoped to the library layers — tests compare quantities against
telemetry dicts and fixture scalars in ways the convention was never
meant to govern.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine import FileContext, Finding
from repro.lint.rules.base import ImportMap, Rule
from repro.units import UNIT_CONSTANTS, UNIT_RETURNS, UNIT_SUFFIXES

__all__ = ["MixedUnitArithmeticRule", "MixedUnitComparisonRule"]

#: Layers the convention governs (everything shipped under ``repro/``).
_SRC_LAYERS = frozenset(
    {
        "analysis",
        "core",
        "lint",
        "memory",
        "root",
        "runtime",
        "sim",
        "stream",
        "workloads",
    }
)

#: Longest suffix first, so ``_cache_lines`` wins over a hypothetical
#: overlapping shorter suffix.
_SUFFIXES = sorted(UNIT_SUFFIXES, key=len, reverse=True)


def _unit_of_name(identifier: str) -> Optional[str]:
    for suffix in _SUFFIXES:
        if identifier == suffix or identifier.endswith("_" + suffix):
            return UNIT_SUFFIXES[suffix]
    return None


class _UnitInference:
    """Best-effort unit of an expression; ``None`` = unknown."""

    def __init__(self, imports: ImportMap) -> None:
        self._imports = imports

    def unit(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            canonical = self._imports.resolve(node)
            if canonical in UNIT_CONSTANTS:
                return UNIT_CONSTANTS[canonical]
            return _unit_of_name(node.id)
        if isinstance(node, ast.Attribute):
            canonical = self._imports.resolve(node)
            if canonical in UNIT_CONSTANTS:
                return UNIT_CONSTANTS[canonical]
            # ``self.window_seconds`` — convention applies to the
            # attribute name itself.
            return _unit_of_name(node.attr)
        if isinstance(node, ast.Call):
            canonical = self._imports.resolve(node.func)
            if canonical in UNIT_RETURNS:
                return UNIT_RETURNS[canonical]
            return None
        if isinstance(node, ast.UnaryOp):
            return self.unit(node.operand)
        if isinstance(node, ast.BinOp):
            return self._binop_unit(node)
        if isinstance(node, (ast.IfExp,)):
            left = self.unit(node.body)
            right = self.unit(node.orelse)
            return left if left == right else None
        return None

    def _binop_unit(self, node: ast.BinOp) -> Optional[str]:
        left = self.unit(node.left)
        right = self.unit(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            # Mixed known units are the *finding*, handled by the rule;
            # as a value, propagate whichever side is known.
            return left or right
        if isinstance(node.op, ast.Mult):
            if isinstance(node.left, ast.Constant) and right is not None:
                return right
            if isinstance(node.right, ast.Constant) and left is not None:
                return left
        return None  # division, modulo, mixed products: unknown


class _DimensionalRule(Rule):
    family = "dimensional"
    severity = "error"
    layers = _SRC_LAYERS

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        inference = _UnitInference(ImportMap(ctx.tree))
        for node in ast.walk(ctx.tree):
            yield from self._check_node(node, inference, ctx)

    def _check_node(
        self, node: ast.AST, inference: _UnitInference, ctx: FileContext
    ) -> Iterator[Finding]:
        return iter(())


class MixedUnitArithmeticRule(_DimensionalRule):
    """RPR801: ``+``/``-`` between two different known units."""

    id = "RPR801"
    title = "arithmetic mixes incompatible units"

    def _check_node(
        self, node: ast.AST, inference: _UnitInference, ctx: FileContext
    ) -> Iterator[Finding]:
        if not isinstance(node, ast.BinOp) or not isinstance(
            node.op, (ast.Add, ast.Sub)
        ):
            return
        left = inference.unit(node.left)
        right = inference.unit(node.right)
        if left is not None and right is not None and left != right:
            op = "+" if isinstance(node.op, ast.Add) else "-"
            yield self.finding(
                ctx,
                node,
                f"{left} {op} {right}: these operands carry different "
                "units; convert one side explicitly (see repro.units) or "
                "rename the variable if the suffix is wrong",
            )


class MixedUnitComparisonRule(_DimensionalRule):
    """RPR802: comparison between two different known units."""

    id = "RPR802"
    title = "comparison across incompatible units"

    def _check_node(
        self, node: ast.AST, inference: _UnitInference, ctx: FileContext
    ) -> Iterator[Finding]:
        if not isinstance(node, ast.Compare):
            return
        operands = [node.left] + list(node.comparators)
        for op, first, second in zip(node.ops, operands, operands[1:]):
            if not isinstance(
                op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)
            ):
                continue  # membership/identity: the right side is a container
            left = inference.unit(first)
            right = inference.unit(second)
            if left is not None and right is not None and left != right:
                yield self.finding(
                    ctx,
                    node,
                    f"comparing {left} against {right}: quantities in "
                    "different units are never meaningfully ordered; "
                    "convert one side explicitly (see repro.units)",
                )
