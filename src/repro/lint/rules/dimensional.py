"""Dimensional-consistency rules (RPR801–RPR802), expression-local.

The codebase carries several base dimensions (seconds, bytes, cycles,
tasks, requests, ...) plus derived rates.  A latency accidentally
added to a footprint type-checks — both are floats/ints — and produces
a number that is silently wrong by nine orders of magnitude.  These
rules evaluate every expression under the shared dimension algebra
(:mod:`repro.lint.dimflow.algebra`) and flag only *known vs known
different*:

* a unit is assigned to a name/attribute by the naming convention in
  :data:`repro.units.UNIT_SUFFIXES` (``_seconds``, ``_bytes``, ...),
  to a constant reference via :data:`repro.units.UNIT_CONSTANTS`
  (``46.3 * NANOSECONDS`` is seconds), and to a call via
  :data:`repro.units.UNIT_RETURNS` (``mebibytes(2)`` is bytes);
* literals are *dimensionless* (the algebra's ``""``), which is
  compatible with everything additively (``x_seconds + 1`` is fine)
  but a real empty dimension under ``*`` and ``/``;
* products and quotients of known units are *known derived
  dimensions*: ``footprint_bytes / elapsed_seconds`` is the rate
  ``bytes/seconds`` and ``window_seconds * gap_seconds`` the (usually
  nonsense) ``seconds^2`` — both participate in checks instead of
  collapsing to unknown as the pre-algebra inference did;
* only ``+``/``-`` between two *different known non-empty* dimensions
  (RPR801) and comparisons between two such dimensions (RPR802) fire.

These rules stay deliberately expression-local — units crossing a call
boundary are the dimflow family's job (RPR810+, which shares this
algebra through function signatures).  Scoped to the library layers —
tests compare quantities against telemetry dicts and fixture scalars
in ways the convention was never meant to govern.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.dimflow.algebra import UnitEvaluator
from repro.lint.engine import FileContext, Finding
from repro.lint.rules.base import ImportMap, Rule

__all__ = ["MixedUnitArithmeticRule", "MixedUnitComparisonRule"]

#: Layers the convention governs (everything shipped under ``repro/``).
_SRC_LAYERS = frozenset(
    {
        "analysis",
        "core",
        "lint",
        "memory",
        "root",
        "runtime",
        "sim",
        "stream",
        "workloads",
    }
)


class _DimensionalRule(Rule):
    family = "dimensional"
    severity = "error"
    layers = _SRC_LAYERS

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        evaluator = UnitEvaluator(ImportMap(ctx.tree))
        for node in ast.walk(ctx.tree):
            yield from self._check_node(node, evaluator, ctx)

    def _check_node(
        self, node: ast.AST, evaluator: UnitEvaluator, ctx: FileContext
    ) -> Iterator[Finding]:
        return iter(())


class MixedUnitArithmeticRule(_DimensionalRule):
    """RPR801: ``+``/``-`` between two different known dimensions."""

    id = "RPR801"
    title = "arithmetic mixes incompatible units"

    def _check_node(
        self, node: ast.AST, evaluator: UnitEvaluator, ctx: FileContext
    ) -> Iterator[Finding]:
        if not isinstance(node, ast.BinOp) or not isinstance(
            node.op, (ast.Add, ast.Sub)
        ):
            return
        left = evaluator.unit(node.left)
        right = evaluator.unit(node.right)
        # Empty-string SCALAR is falsy: dimensionless operands are
        # additively compatible with everything, so only two known,
        # non-empty, different dimensions fire.
        if left and right and left != right:
            op = "+" if isinstance(node.op, ast.Add) else "-"
            yield self.finding(
                ctx,
                node,
                f"{left} {op} {right}: these operands carry different "
                "units; convert one side explicitly (see repro.units) or "
                "rename the variable if the suffix is wrong",
            )


class MixedUnitComparisonRule(_DimensionalRule):
    """RPR802: comparison between two different known dimensions."""

    id = "RPR802"
    title = "comparison across incompatible units"

    def _check_node(
        self, node: ast.AST, evaluator: UnitEvaluator, ctx: FileContext
    ) -> Iterator[Finding]:
        if not isinstance(node, ast.Compare):
            return
        operands = [node.left] + list(node.comparators)
        for op, first, second in zip(node.ops, operands, operands[1:]):
            if not isinstance(
                op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)
            ):
                continue  # membership/identity: the right side is a container
            left = evaluator.unit(first)
            right = evaluator.unit(second)
            if left and right and left != right:
                yield self.finding(
                    ctx,
                    node,
                    f"comparing {left} against {right}: quantities in "
                    "different units are never meaningfully ordered; "
                    "convert one side explicitly (see repro.units)",
                )
