"""Effect-signature rule families (RPR901–RPR907).

Three families built on the transitive
:class:`~repro.lint.effects.fixpoint.EffectAnalysis` (rules that set
``needs_effects``) or directly on the per-file
:class:`~repro.lint.effects.model.FunctionEffects` records (rules
whose invariant is local to one function body):

* **plugin-contract** (RPR901–RPR903): throttling-policy hooks are
  observers.  The contract's hook names are discovered from a
  module-level ``POLICY_HOOKS = ("setup", ...)`` tuple (the same
  annotation idiom as ``POOL_BOUNDARY``), policy classes from the
  class hierarchy under any hook-defining class in a declaring
  module.  A hook that mutates a simulator-owned argument —
  transitively, through helpers and aliases — retains a mutable
  reference, or writes module globals breaks replay: the simulator
  hands hooks live ``RunningTask``/machine state and assumes it comes
  back untouched.
* **mutation-after-freeze** (RPR904–RPR905): objects stored into
  memo-signature slots (``_sig*`` / ``_cohort*`` / the
  :data:`~repro.lint.rules.memosafety.MEMO_KEY_FIELDS` slots of a
  ``__slots__`` class) are hashed once; mutating the stored object
  afterwards — through any alias — silently desynchronizes the memo
  key from the state it describes.  RPR202 owns the *direct*
  ``self._sig... = x`` reassignment; these rules own what it cannot
  see: capture-then-mutate flows and interior/aliased mutation.
* **exception-flow** (RPR906–RPR907): exceptions crossing the
  process-pool boundary must be ``repro.errors`` types (builtin
  tracebacks pickle poorly and lose run context), and deterministic
  layers may not raise bare ``Exception``/``BaseException`` (callers
  cannot catch those deliberately without catching everything).

Every transitive finding prints the witness — the alias chain and the
shortest call path that justify it — and the analysis
under-approximates (unknown callees are ``⊤``, never evidence), so
the families report only provable violations.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from repro.lint.engine import Finding
from repro.lint.rules.base import Rule
from repro.lint.rules.determinism import DETERMINISTIC_LAYERS
from repro.lint.rules.memosafety import (
    MEMO_KEY_FIELDS,
    _REBUILD_METHODS,
)

__all__ = [
    "PolicyHookArgumentMutationRule",
    "PolicyHookReferenceRetentionRule",
    "PolicyHookGlobalWriteRule",
    "PostCaptureMutationRule",
    "SignatureInteriorMutationRule",
    "WorkerExceptionEscapeRule",
    "DeterministicBareExceptionRule",
]

#: Module-level tuple naming the policy plugin contract's hook methods
#: (``repro/core/plugin.py`` carries the real one; fixture corpora
#: declare their own).  The same machine-readable-annotation idiom as
#: ``POOL_BOUNDARY``.
_POLICY_HOOKS_NAME = "POLICY_HOOKS"

#: Layers whose files never host production policies or memo state.
_SKIPPED_LAYERS = frozenset({"tests", "unknown"})

#: Exception types allowed to escape a pool-worker entry besides
#: ``repro.errors`` ancestry: the abstract-hook idiom and the
#: interpreter-control exceptions the executor itself handles.
_SANCTIONED_WORKER_EXCEPTIONS = frozenset(
    {
        "NotImplementedError",
        "KeyboardInterrupt",
        "SystemExit",
        "GeneratorExit",
    }
)

#: Direct ``self.<slot> = x`` / ``self.<slot> += x`` reassignment is
#: RPR202's, syntactically; RPR905 owns every other mutation shape.
_DIRECT_REASSIGN_KINDS = frozenset({"store-attr", "augstore"})


def _protected_slots(cls) -> FrozenSet[str]:
    """Memo-signature slot names of one class (RPR202's scoping)."""
    if cls.slots is None:
        return frozenset()
    return frozenset(
        name
        for name in cls.slots
        if name.startswith("_sig")
        or name.startswith("_cohort")
        or name in MEMO_KEY_FIELDS
    )


def _ancestors(
    canonical: str, hierarchy: Dict[str, Tuple[str, ...]]
) -> Set[str]:
    """Inclusive ancestor set of a canonical class name."""
    seen: Set[str] = set()
    stack = [canonical]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(hierarchy.get(current, ()))
    return seen


def _policy_surface(graph) -> Tuple[FrozenSet[str], List[Tuple[str, object]]]:
    """``(hook names, [(namespace, ClassSummary), ...])`` of the
    policy-plugin contract, or empty when no module declares one."""
    hooks: Set[str] = set()
    bases: Set[str] = set()
    modules = graph.module_summaries()
    for namespace in sorted(modules):
        summary = modules[namespace]
        declared: Set[str] = set()
        for name, values in summary.string_tuples:
            if name == _POLICY_HOOKS_NAME:
                declared.update(values)
        if not declared:
            continue
        hooks.update(declared)
        for cls in summary.classes:
            if declared.intersection(cls.methods):
                bases.add(f"{namespace}.{cls.name}")
    if not hooks or not bases:
        return frozenset(), []
    hierarchy = graph.class_hierarchy()
    policies: List[Tuple[str, object]] = []
    for namespace in sorted(modules):
        for cls in modules[namespace].classes:
            if _ancestors(f"{namespace}.{cls.name}", hierarchy) & bases:
                policies.append((namespace, cls))
    return frozenset(hooks), policies


class _PolicyContractRule(Rule):
    """Shared discovery for RPR901–RPR903: walk every hook method of
    every policy class and hand it to :meth:`_check_hook`."""

    corpus_level = True
    needs_graph = True
    needs_effects = True

    def __init__(self) -> None:
        self._findings: List[Finding] = []
        self._graph = None

    def consume_graph(self, graph) -> None:
        self._graph = graph

    def consume_effects(self, analysis) -> None:
        graph = self._graph
        if graph is None:
            return
        hooks, policies = _policy_surface(graph)
        for namespace, cls in policies:
            for hook in sorted(hooks):
                key = f"{namespace}::{cls.name}.{hook}"
                node = graph.node(key)
                if node is None or node.layer in _SKIPPED_LAYERS:
                    continue
                fx = analysis.function_effects(key)
                if fx is None:
                    continue
                self._check_hook(analysis, key, node, cls, hook, fx)

    def _check_hook(self, analysis, key, node, cls, hook, fx) -> None:
        raise NotImplementedError

    def finalize(self) -> Iterator[Finding]:
        findings, self._findings = self._findings, []
        return iter(findings)


class PolicyHookArgumentMutationRule(_PolicyContractRule):
    """RPR901: policy hook mutates a simulator-owned argument."""

    id = "RPR901"
    title = "policy hook mutates a simulator-owned argument"
    family = "plugin-contract"
    severity = "error"

    def _check_hook(self, analysis, key, node, cls, hook, fx) -> None:
        receiver = fx.params[0] if fx.params else None
        by_param: Dict[str, Set[str]] = {}
        for param, fieldname in analysis.signature(key).mutates:
            if param != receiver:
                by_param.setdefault(param, set()).add(fieldname)
        for param in sorted(by_param):
            witness = analysis.mutation_witness(key, param)
            if witness is None:
                continue  # not locally provable: stay silent
            path_keys, site_key, mutation = witness
            fields = ", ".join(
                name or "<the object itself>"
                for name in sorted(by_param[param])
            )
            chain = mutation.chain()
            rendered = analysis.render_path(path_keys)
            self._findings.append(
                Finding(
                    rule=self.id,
                    severity=self.severity,
                    path=analysis.node_path(site_key) or node.path,
                    line=mutation.lineno,
                    col=0,
                    message=(
                        f"policy hook {cls.name}.{hook}() mutates its "
                        f"{param!r} argument ({fields}); hooks observe "
                        "simulator state, they never edit it — alias "
                        f"chain: {chain}; call path: {rendered}"
                    ),
                    source_line=(
                        f"{cls.name}.{hook} mutates {param} via {chain}"
                    ),
                )
            )


class PolicyHookReferenceRetentionRule(_PolicyContractRule):
    """RPR902: policy hook retains a reference to an argument."""

    id = "RPR902"
    title = "policy hook retains a mutable argument reference"
    family = "plugin-contract"
    severity = "error"

    def _check_hook(self, analysis, key, node, cls, hook, fx) -> None:
        receiver = fx.params[0] if fx.params else None
        immutable = set(fx.immutable_params)
        for param in sorted(analysis.signature(key).captures):
            if param == receiver:
                continue
            if param in immutable:
                # An ``int``/``str``-annotated argument is a value;
                # storing it retains no mutable simulator state.
                continue
            witness = analysis.capture_witness(key, param)
            if witness is None:
                continue
            path_keys, site_key, capture = witness
            chain = capture.chain()
            rendered = analysis.render_path(path_keys)
            self._findings.append(
                Finding(
                    rule=self.id,
                    severity=self.severity,
                    path=analysis.node_path(site_key) or node.path,
                    line=capture.lineno,
                    col=0,
                    message=(
                        f"policy hook {cls.name}.{hook}() retains a "
                        f"reference to its {param!r} argument (stored "
                        f"into {capture.dest}); a kept reference lets "
                        "the policy read or mutate simulator state after "
                        "the hook returned — copy the values you need "
                        f"instead — alias chain: {chain}; call path: "
                        f"{rendered}"
                    ),
                    source_line=(
                        f"{cls.name}.{hook} retains {param} in "
                        f"{capture.dest} via {chain}"
                    ),
                )
            )


class PolicyHookGlobalWriteRule(_PolicyContractRule):
    """RPR903: policy hook writes module globals."""

    id = "RPR903"
    title = "policy hook writes module globals"
    family = "plugin-contract"
    severity = "error"

    def _check_hook(self, analysis, key, node, cls, hook, fx) -> None:
        writes = analysis.signature(key).global_writes
        if not writes:
            return
        witness = analysis.global_write_witness(key)
        if witness is None:
            return
        path_keys, site_key, name, lineno = witness
        names = ", ".join(repr(w) for w in sorted(writes))
        rendered = analysis.render_path(path_keys)
        self._findings.append(
            Finding(
                rule=self.id,
                severity=self.severity,
                path=analysis.node_path(site_key) or node.path,
                line=lineno,
                col=0,
                message=(
                    f"policy hook {cls.name}.{hook}() writes module "
                    f"global(s) {names}; policy state belongs on the "
                    "instance (module globals survive across runs and "
                    "break replay isolation) — call path: "
                    f"{rendered}"
                ),
                source_line=(
                    f"{cls.name}.{hook} writes global {name} via "
                    f"{rendered}"
                ),
            )
        )


class _MemoEffectRule(Rule):
    """Shared scoping for RPR904–RPR905: per-class protected slots."""

    corpus_level = True

    def __init__(self) -> None:
        self._findings: List[Finding] = []

    def consume_summary(self, summary) -> None:
        if summary.layer in _SKIPPED_LAYERS:
            return
        protected_by_class = {
            cls.name: _protected_slots(cls) for cls in summary.classes
        }
        for fx in summary.effects:
            if fx.class_name is None:
                continue
            protected = protected_by_class.get(fx.class_name)
            if not protected:
                continue
            self._collect(summary, fx, protected)

    def _collect(self, summary, fx, protected: FrozenSet[str]) -> None:
        raise NotImplementedError

    def finalize(self) -> Iterator[Finding]:
        findings, self._findings = self._findings, []
        return iter(findings)


class PostCaptureMutationRule(_MemoEffectRule):
    """RPR904: object mutated after capture into a signature slot."""

    id = "RPR904"
    title = "object mutated after capture into a memo-signature slot"
    family = "mutation-after-freeze"
    severity = "error"

    def _collect(self, summary, fx, protected: FrozenSet[str]) -> None:
        # Applies in constructors too: capture-then-mutate is ordering
        # sensitive, and a ctor that appends after storing has already
        # handed the memo a moving target.
        for cm in fx.capture_mutations:
            if cm.attr not in protected:
                continue
            chain = cm.chain()
            self._findings.append(
                Finding(
                    rule=self.id,
                    severity=self.severity,
                    path=summary.path,
                    line=cm.lineno,
                    col=0,
                    message=(
                        f"self.{cm.attr} captured {cm.name!r} at line "
                        f"{cm.capture_lineno}, and the captured object is "
                        f"mutated here ({cm.kind}); the stored signature "
                        "now aliases mutable state — store a copy, or "
                        "finish building the object before capturing it — "
                        f"alias chain: {chain}"
                    ),
                    source_line=(
                        f"{fx.qualname}: {cm.kind} on {cm.name} after "
                        f"capture into self.{cm.attr} via {chain}"
                    ),
                )
            )


class SignatureInteriorMutationRule(_MemoEffectRule):
    """RPR905: interior or aliased mutation of a signature slot."""

    id = "RPR905"
    title = "memo-signature slot mutated in place or through an alias"
    family = "mutation-after-freeze"
    severity = "error"

    def _collect(self, summary, fx, protected: FrozenSet[str]) -> None:
        method = fx.qualname.rpartition(".")[2]
        if method in _REBUILD_METHODS:
            return  # construction/unpickle legitimately build the slots
        receiver = fx.params[0] if fx.params else None
        if receiver is None:
            return
        for mutation in fx.mutations:
            if mutation.param != receiver:
                continue
            if mutation.field not in protected:
                continue
            direct = mutation.via == (receiver,)
            if direct and mutation.kind in _DIRECT_REASSIGN_KINDS:
                continue  # the syntactic reassignment is RPR202's
            chain = mutation.chain()
            shape = (
                f"in-place ({mutation.kind})"
                if not (mutation.kind in _DIRECT_REASSIGN_KINDS)
                else f"through an alias ({mutation.kind})"
            )
            self._findings.append(
                Finding(
                    rule=self.id,
                    severity=self.severity,
                    path=summary.path,
                    line=mutation.lineno,
                    col=0,
                    message=(
                        f"{fx.class_name}.{mutation.field} feeds a memo "
                        f"signature but is mutated {shape} in {method}(); "
                        "signature slots are frozen after construction "
                        "(the snapshot memo has no invalidation path) — "
                        f"alias chain: {chain}"
                    ),
                    source_line=(
                        f"{fx.qualname}: {mutation.kind} on "
                        f"{fx.class_name}.{mutation.field} via {chain}"
                    ),
                )
            )


class WorkerExceptionEscapeRule(Rule):
    """RPR906: non-``repro.errors`` exception escapes a pool worker."""

    id = "RPR906"
    title = "builtin exception can escape a pool-worker entry"
    family = "exception-flow"
    severity = "error"
    corpus_level = True
    needs_graph = True
    needs_effects = True

    def __init__(self) -> None:
        self._findings: List[Finding] = []
        self._graph = None

    def consume_graph(self, graph) -> None:
        self._graph = graph

    def consume_effects(self, analysis) -> None:
        graph = self._graph
        if graph is None:
            return
        for key in graph.worker_entry_keys():
            node = graph.node(key)
            if node is None:
                continue
            signature = analysis.signature(key)
            for exc in sorted(signature.raises):
                if exc in _SANCTIONED_WORKER_EXCEPTIONS:
                    continue
                if analysis.is_repro_error(exc):
                    continue
                witness = analysis.raise_witness(key, exc)
                if witness is None:
                    continue  # not reconstructible: stay silent
                path_keys, site_key, lineno = witness
                rendered = analysis.render_path(path_keys)
                self._findings.append(
                    Finding(
                        rule=self.id,
                        severity=self.severity,
                        path=analysis.node_path(site_key) or node.path,
                        line=lineno,
                        col=0,
                        message=(
                            f"{exc} can escape pool-worker entry "
                            f"{node.label()}(); exceptions crossing the "
                            "process-pool boundary must be repro.errors "
                            "types (builtin tracebacks lose run context "
                            "and pickle poorly) — convert at the raise "
                            f"site or catch at the boundary — raised "
                            f"via: {rendered}"
                        ),
                        source_line=(
                            f"{exc} escapes {node.label()} via {rendered}"
                        ),
                    )
                )

    def finalize(self) -> Iterator[Finding]:
        findings, self._findings = self._findings, []
        return iter(findings)


class DeterministicBareExceptionRule(Rule):
    """RPR907: deterministic layer raises bare ``Exception``."""

    id = "RPR907"
    title = "bare Exception raised in a deterministic layer"
    family = "exception-flow"
    severity = "error"
    corpus_level = True

    def __init__(self) -> None:
        self._findings: List[Finding] = []

    def consume_summary(self, summary) -> None:
        if summary.layer not in DETERMINISTIC_LAYERS:
            return
        for fx in summary.effects:
            for site in fx.raises:
                if site.kind != "explicit":
                    continue
                if site.type not in ("Exception", "BaseException"):
                    continue
                self._findings.append(
                    Finding(
                        rule=self.id,
                        severity=self.severity,
                        path=summary.path,
                        line=site.lineno,
                        col=0,
                        message=(
                            f"bare {site.type} raised in "
                            f"{fx.qualname}(); deterministic layers "
                            "raise specific repro.errors types so "
                            "callers can catch deliberately instead of "
                            "catching everything"
                        ),
                        source_line=(
                            f"raise {site.type} in {fx.qualname}"
                        ),
                    )
                )

    def finalize(self) -> Iterator[Finding]:
        findings, self._findings = self._findings, []
        return iter(findings)
