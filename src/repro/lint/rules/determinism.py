"""Determinism rules (RPR101–RPR104).

The simulator layers (``sim``, ``memory``, ``stream``, ``core``) must
be pure functions of their inputs: the chaos-parity CI job diffs a
fault-injected parallel sweep against the fault-free serial run
byte-for-byte, and the memoization property tests assert cached ==
cold float-for-float.  Any wall-clock read, global-RNG draw,
environment read, or ``PYTHONHASHSEED``-dependent ``hash()`` in those
layers is a latent parity break.  Wall-clock time is legitimate in
``runtime`` (it measures real executions) — that layer is the
allowlist.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding
from repro.lint.rules.base import ImportMap, Rule

__all__ = [
    "DETERMINISTIC_LAYERS",
    "WallClockRule",
    "UnseededRandomRule",
    "EnvironmentReadRule",
    "BuiltinHashRule",
]

#: Layers whose outputs must be bit-reproducible.
DETERMINISTIC_LAYERS = frozenset({"sim", "memory", "stream", "core"})

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``random`` module functions that draw from the hidden global RNG.
_GLOBAL_RANDOM = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: ``numpy.random`` legacy functions backed by the global state.
_GLOBAL_NP_RANDOM = frozenset(
    {
        "choice",
        "normal",
        "permutation",
        "rand",
        "randint",
        "randn",
        "random",
        "random_sample",
        "seed",
        "shuffle",
        "standard_normal",
        "uniform",
    }
)


class WallClockRule(Rule):
    """RPR101: wall-clock reads inside the deterministic layers."""

    id = "RPR101"
    title = "wall-clock read in a deterministic layer"
    family = "determinism"
    severity = "error"
    layers = DETERMINISTIC_LAYERS

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = imports.resolve(node.func)
            if canonical in _WALL_CLOCK:
                yield self.finding(
                    ctx,
                    node,
                    f"{canonical}() in layer {ctx.layer!r}: simulated time "
                    "must come from the event loop, wall time only from "
                    "runtime/ measurement code",
                )


class UnseededRandomRule(Rule):
    """RPR102: randomness with no explicit seed (any layer, tests too)."""

    id = "RPR102"
    title = "unseeded or global-state randomness"
    family = "determinism"
    severity = "error"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = imports.resolve(node.func)
            if canonical is None:
                continue
            message = self._violation(canonical, node)
            if message is not None:
                yield self.finding(ctx, node, message)

    @staticmethod
    def _violation(canonical: str, node: ast.Call) -> str | None:
        no_args = not node.args and not node.keywords
        module, _, attr = canonical.rpartition(".")
        if module == "random":
            if attr in _GLOBAL_RANDOM:
                return (
                    f"random.{attr}() draws from the hidden global RNG; "
                    "use random.Random(seed) so every run replays"
                )
            if attr == "seed" and no_args:
                return "random.seed() with no arguments seeds from the OS"
            if attr == "Random" and no_args:
                return "random.Random() without a seed is nondeterministic"
            if attr == "SystemRandom":
                return "random.SystemRandom is nondeterministic by design"
        if module == "numpy.random":
            if attr == "default_rng" and no_args:
                return (
                    "numpy.random.default_rng() without a seed is "
                    "nondeterministic; pass an explicit seed"
                )
            if attr in _GLOBAL_NP_RANDOM:
                return (
                    f"numpy.random.{attr}() uses numpy's global state; "
                    "use numpy.random.default_rng(seed)"
                )
        return None


class EnvironmentReadRule(Rule):
    """RPR103: environment reads inside the deterministic layers."""

    id = "RPR103"
    title = "environment read in a deterministic layer"
    family = "determinism"
    severity = "error"
    layers = DETERMINISTIC_LAYERS

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            canonical = None
            if isinstance(node, (ast.Attribute, ast.Name)):
                canonical = imports.resolve(node)
            if canonical in ("os.environ", "os.getenv", "os.environb"):
                yield self.finding(
                    ctx,
                    node,
                    f"{canonical} read in layer {ctx.layer!r}: configuration "
                    "must arrive through explicit parameters (the executor "
                    "hashes them into cache keys; the environment is "
                    "invisible to it)",
                )


class BuiltinHashRule(Rule):
    """RPR104: built-in ``hash()`` inside the deterministic layers.

    ``hash(str)`` changes per process under ``PYTHONHASHSEED``
    randomisation, so any ordering or key derived from it differs
    between the serial path and pool workers.  Stable content hashes
    belong to :func:`repro.runtime.cache.stable_hash`.
    """

    id = "RPR104"
    title = "PYTHONHASHSEED-dependent hash() in a deterministic layer"
    family = "determinism"
    severity = "error"
    layers = DETERMINISTIC_LAYERS

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "built-in hash() is salted per process "
                    "(PYTHONHASHSEED); use repro.runtime.cache.stable_hash "
                    "or an explicit key function",
                )
