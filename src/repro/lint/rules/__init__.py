"""Rule registry for ``repro lint``.

Every shipped rule is listed in :data:`RULE_CLASSES`; the two
engine-emitted meta findings (unparseable file, malformed suppression)
are described in :data:`META_RULES` so ``--list-rules``, ``--rule``
filtering, and the docs-parity test cover them too.  The catalogue in
``docs/static_analysis.md`` is compared against
:func:`rule_catalogue` by ``tests/lint/test_docs_parity.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError
from repro.lint.rules.api import LayerImportRule, MissingAllRule
from repro.lint.rules.base import Rule
from repro.lint.rules.determinism import (
    DETERMINISTIC_LAYERS,
    BuiltinHashRule,
    EnvironmentReadRule,
    UnseededRandomRule,
    WallClockRule,
)
from repro.lint.rules.dimensional import (
    MixedUnitArithmeticRule,
    MixedUnitComparisonRule,
)
from repro.lint.rules.effects import (
    DeterministicBareExceptionRule,
    PolicyHookArgumentMutationRule,
    PolicyHookGlobalWriteRule,
    PolicyHookReferenceRetentionRule,
    PostCaptureMutationRule,
    SignatureInteriorMutationRule,
    WorkerExceptionEscapeRule,
)
from repro.lint.rules.hygiene import (
    BroadExceptRule,
    MutableDefaultRule,
    SumOverSetRule,
)
from repro.lint.rules.memosafety import FrozenMutationRule, MemoFieldMutationRule
from repro.lint.rules.poolsafety import (
    NonPicklableSubmissionRule,
    WorkerGlobalMutationRule,
    WorkerTelemetryRule,
)
from repro.lint.rules.telemetry import OrphanSchemaRule, UnregisteredEventRule
from repro.lint.rules.transitive import (
    TransitiveEntropyRule,
    TransitiveEnvironmentRule,
    TransitiveHashRule,
    TransitiveWallClockRule,
)
from repro.lint.rules.unitflow import (
    ArgumentUnitMismatchRule,
    ConflictingAttributeUnitsRule,
    InconsistentReturnUnitsRule,
    InferredUnitMixRule,
    TelemetryFieldUnitRule,
)

__all__ = [
    "DETERMINISTIC_LAYERS",
    "META_RULES",
    "RULE_CLASSES",
    "RULE_FAMILIES",
    "Rule",
    "all_rule_ids",
    "build_rules",
    "rule_catalogue",
]

#: Every rule class, in id order.
RULE_CLASSES: Tuple[type, ...] = (
    WallClockRule,
    UnseededRandomRule,
    EnvironmentReadRule,
    BuiltinHashRule,
    FrozenMutationRule,
    MemoFieldMutationRule,
    UnregisteredEventRule,
    OrphanSchemaRule,
    BroadExceptRule,
    MutableDefaultRule,
    SumOverSetRule,
    MissingAllRule,
    LayerImportRule,
    TransitiveWallClockRule,
    TransitiveEntropyRule,
    TransitiveEnvironmentRule,
    TransitiveHashRule,
    NonPicklableSubmissionRule,
    WorkerGlobalMutationRule,
    WorkerTelemetryRule,
    MixedUnitArithmeticRule,
    MixedUnitComparisonRule,
    PolicyHookArgumentMutationRule,
    PolicyHookReferenceRetentionRule,
    PolicyHookGlobalWriteRule,
    PostCaptureMutationRule,
    SignatureInteriorMutationRule,
    WorkerExceptionEscapeRule,
    DeterministicBareExceptionRule,
    ArgumentUnitMismatchRule,
    InconsistentReturnUnitsRule,
    ConflictingAttributeUnitsRule,
    InferredUnitMixRule,
    TelemetryFieldUnitRule,
)

#: Engine-emitted findings: id -> (title, family, severity, autofixable).
META_RULES: Dict[str, Tuple[str, str, str, bool]] = {
    "RPR001": ("file does not parse", "engine", "error", False),
    "RPR002": ("malformed suppression comment", "engine", "error", False),
}

#: Family name -> one-line description (docs parity checks these too).
RULE_FAMILIES: Dict[str, str] = {
    "engine": "findings the engine itself emits",
    "determinism": "bit-identical replay of the model layers",
    "memo-safety": "memo keys stay immutable after construction",
    "telemetry": "EVENT_SCHEMAS and emit sites agree both ways",
    "executor-hygiene": "failure signals and float ordering survive",
    "api-hygiene": "explicit exports and one-way layering",
    "transitive-determinism": "no call path from the model layers to a sink",
    "pool-safety": "everything crossing the process pool pickles cleanly",
    "dimensional": "seconds, bytes, and counts never mix silently",
    "plugin-contract": "policy hooks observe simulator state, never edit it",
    "mutation-after-freeze": "captured memo-signature objects stay frozen",
    "exception-flow": "only repro.errors types cross process boundaries",
    "dimflow": "units survive the call graph: signatures, returns, emits",
}


def all_rule_ids() -> List[str]:
    """Every known rule id (shipped rules plus engine meta findings)."""
    return sorted([cls.id for cls in RULE_CLASSES] + list(META_RULES))


def rule_catalogue() -> List[Dict[str, object]]:
    """Stable description of every rule, for --list-rules and docs parity."""
    rows: List[Dict[str, object]] = []
    for rule_id, (title, family, severity, autofixable) in META_RULES.items():
        rows.append(
            {
                "id": rule_id,
                "title": title,
                "family": family,
                "severity": severity,
                "autofixable": autofixable,
            }
        )
    for cls in RULE_CLASSES:
        rows.append(
            {
                "id": cls.id,
                "title": cls.title,
                "family": cls.family,
                "severity": cls.severity,
                "autofixable": cls.autofixable,
            }
        )
    rows.sort(key=lambda row: str(row["id"]))
    return rows


def build_rules(
    only: Optional[Sequence[str]] = None,
    telemetry_schemas: Optional[Set[str]] = None,
) -> List[Rule]:
    """Instantiate the rule set.

    Args:
        only: Restrict to these rule ids (meta ids are accepted and
            simply have no class to instantiate).  Unknown ids raise
            :class:`~repro.errors.ConfigurationError`.
        telemetry_schemas: Override the registered event set the
            telemetry rules compare against (tests inject small fake
            registries; the default reads the live ``EVENT_SCHEMAS``).
    """
    known = set(all_rule_ids())
    wanted: Optional[Set[str]] = None
    if only is not None:
        wanted = set(only)
        unknown = sorted(wanted - known)
        if unknown:
            raise ConfigurationError(
                f"unknown lint rule id(s) {', '.join(unknown)}; known: "
                + ", ".join(all_rule_ids())
            )
    rules: List[Rule] = []
    for cls in RULE_CLASSES:
        if wanted is not None and cls.id not in wanted:
            continue
        if cls in (UnregisteredEventRule, OrphanSchemaRule):
            rules.append(cls(schemas=telemetry_schemas))
        else:
            rules.append(cls())
    return rules
