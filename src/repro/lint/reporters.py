"""Rendering and baseline persistence for lint reports.

Three formats: ``text`` (one ``path:line:col: RPR### [severity]
message`` line per finding plus a summary), ``json`` (a stable
machine-readable document the CI job uploads as an artifact next to
``BENCH_sim.json``), and ``sarif`` (SARIF 2.1.0, the interchange
format code-scanning UIs ingest).  Baselines are JSON files of
finding fingerprints — accepted pre-existing debt that stops failing
the build without a suppression comment at every site.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Set, Union

from repro.errors import ReproError
from repro.lint.engine import Finding, LintReport

__all__ = [
    "LINT_REPORT_VERSION",
    "normalize_fingerprint",
    "render_text",
    "render_json",
    "render_sarif",
    "findings_to_baseline",
    "load_baseline",
    "write_baseline",
]

#: Bump when the JSON report's shape changes.
#: 2: added ``wall_seconds`` and ``jobs``.
#: 3: added ``cache_hits``; fingerprints whitespace-normalized.
LINT_REPORT_VERSION = 3

#: SARIF partialFingerprints key; bump with the fingerprint scheme.
_SARIF_FINGERPRINT_KEY = "reproLint/v1"


def normalize_fingerprint(fingerprint: str) -> str:
    """Collapse whitespace in a fingerprint's source-context part.

    Fingerprints are ``rule:path:source-context``.  The context is the
    stripped source line (or a rendered chain for corpus findings), so
    reformatting — re-indentation, argument wrapping — used to churn
    baselines even though nothing moved.  ``Finding.fingerprint`` now
    emits collapsed contexts; applying the same collapse when *loading*
    a baseline migrates pre-normalization files transparently.  The
    function is idempotent, so already-normalized input passes through.
    """
    parts = fingerprint.split(":", 2)
    if len(parts) != 3:
        return fingerprint
    rule, path, context = parts
    return f"{rule}:{path}:{' '.join(context.split())}"


def _finding_dict(finding: Finding) -> Dict[str, Any]:
    return {
        "rule": finding.rule,
        "severity": finding.severity,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "fingerprint": finding.fingerprint(),
    }


def render_text(report: LintReport) -> str:
    """Human-readable report: one line per finding, then a summary."""
    lines = [
        f"{f.location()}: {f.rule} [{f.severity}] {f.message}"
        for f in report.findings
    ]
    summary = (
        f"{len(report.findings)} finding(s) "
        f"({report.errors} error(s), {report.warnings} warning(s)) "
        f"in {report.files_scanned} file(s)"
    )
    extras = []
    if report.suppressed:
        extras.append(f"{report.suppressed} suppressed")
    if report.baselined:
        extras.append(f"{report.baselined} baselined")
    if extras:
        summary += " — " + ", ".join(extras)
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (the CI artifact format)."""
    document = {
        "version": LINT_REPORT_VERSION,
        "files_scanned": report.files_scanned,
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "cache_hits": report.cache_hits,
        "wall_seconds": round(report.wall_seconds, 6),
        "jobs": report.jobs,
        "summary": {
            "errors": report.errors,
            "warnings": report.warnings,
            "by_rule": report.counts_by_rule(),
        },
        "findings": [_finding_dict(f) for f in report.findings],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


_SARIF_LEVELS = {"error": "error", "warning": "warning"}


def _sarif_result(finding: Finding) -> Dict[str, Any]:
    return {
        "ruleId": finding.rule,
        "level": _SARIF_LEVELS.get(finding.severity, "note"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        # SARIF lines are 1-based; corpus findings
                        # anchored at line 0 clamp to 1.
                        "startLine": max(1, finding.line),
                        "startColumn": max(1, finding.col + 1),
                    },
                }
            }
        ],
        "partialFingerprints": {
            _SARIF_FINGERPRINT_KEY: finding.fingerprint(),
        },
    }


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 report, the format code-scanning services ingest.

    The driver carries the full rule catalogue (id, title, family,
    default level) so viewers can show metadata for rules with zero
    results, and every result carries the same fingerprint the
    baseline mechanism uses under ``partialFingerprints``.
    """
    from repro.lint.rules import rule_catalogue

    rules = [
        {
            "id": entry["id"],
            "name": entry["id"],
            "shortDescription": {"text": entry["title"]},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS.get(entry["severity"], "note"),
            },
            "properties": {
                "family": entry["family"],
                "autofixable": entry["autofixable"],
            },
        }
        for entry in rule_catalogue()
    ]
    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": str(LINT_REPORT_VERSION),
                        "informationUri": (
                            "https://example.invalid/repro/docs/"
                            "static_analysis.md"
                        ),
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": [_sarif_result(f) for f in report.findings],
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def findings_to_baseline(report: LintReport) -> str:
    """Serialise the current findings as an accepted-debt baseline."""
    document = {
        "version": LINT_REPORT_VERSION,
        "fingerprints": sorted({f.fingerprint() for f in report.findings}),
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def write_baseline(report: LintReport, path: Union[str, pathlib.Path]) -> None:
    pathlib.Path(path).write_text(findings_to_baseline(report))


def load_baseline(path: Union[str, pathlib.Path]) -> Set[str]:
    """Read a baseline file's fingerprints.

    Raises :class:`~repro.errors.ReproError` on malformed documents —
    a silently empty baseline would resurrect every accepted finding.
    """
    try:
        document = json.loads(pathlib.Path(path).read_text())
    except OSError as exc:
        raise ReproError(f"cannot read lint baseline {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise ReproError(f"lint baseline {path} is not valid JSON: {exc}")
    fingerprints = document.get("fingerprints") if isinstance(document, dict) else None
    if not isinstance(fingerprints, list) or not all(
        isinstance(item, str) for item in fingerprints
    ):
        raise ReproError(
            f"lint baseline {path} must contain a 'fingerprints' string list"
        )
    # Normalize on load: baselines written before the whitespace
    # collapse keep matching without a rewrite.
    return {normalize_fingerprint(item) for item in fingerprints}
