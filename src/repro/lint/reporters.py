"""Rendering and baseline persistence for lint reports.

Two formats: ``text`` (one ``path:line:col: RPR### [severity]
message`` line per finding plus a summary) and ``json`` (a stable
machine-readable document the CI job uploads as an artifact next to
``BENCH_sim.json``).  Baselines are JSON files of finding
fingerprints — accepted pre-existing debt that stops failing the
build without a suppression comment at every site.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Set, Union

from repro.errors import ReproError
from repro.lint.engine import Finding, LintReport

__all__ = [
    "LINT_REPORT_VERSION",
    "render_text",
    "render_json",
    "findings_to_baseline",
    "load_baseline",
    "write_baseline",
]

#: Bump when the JSON report's shape changes.
#: 2: added ``wall_seconds`` and ``jobs``.
LINT_REPORT_VERSION = 2


def _finding_dict(finding: Finding) -> Dict[str, Any]:
    return {
        "rule": finding.rule,
        "severity": finding.severity,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "fingerprint": finding.fingerprint(),
    }


def render_text(report: LintReport) -> str:
    """Human-readable report: one line per finding, then a summary."""
    lines = [
        f"{f.location()}: {f.rule} [{f.severity}] {f.message}"
        for f in report.findings
    ]
    summary = (
        f"{len(report.findings)} finding(s) "
        f"({report.errors} error(s), {report.warnings} warning(s)) "
        f"in {report.files_scanned} file(s)"
    )
    extras = []
    if report.suppressed:
        extras.append(f"{report.suppressed} suppressed")
    if report.baselined:
        extras.append(f"{report.baselined} baselined")
    if extras:
        summary += " — " + ", ".join(extras)
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (the CI artifact format)."""
    document = {
        "version": LINT_REPORT_VERSION,
        "files_scanned": report.files_scanned,
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "wall_seconds": round(report.wall_seconds, 6),
        "jobs": report.jobs,
        "summary": {
            "errors": report.errors,
            "warnings": report.warnings,
            "by_rule": report.counts_by_rule(),
        },
        "findings": [_finding_dict(f) for f in report.findings],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def findings_to_baseline(report: LintReport) -> str:
    """Serialise the current findings as an accepted-debt baseline."""
    document = {
        "version": LINT_REPORT_VERSION,
        "fingerprints": sorted({f.fingerprint() for f in report.findings}),
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def write_baseline(report: LintReport, path: Union[str, pathlib.Path]) -> None:
    pathlib.Path(path).write_text(findings_to_baseline(report))


def load_baseline(path: Union[str, pathlib.Path]) -> Set[str]:
    """Read a baseline file's fingerprints.

    Raises :class:`~repro.errors.ReproError` on malformed documents —
    a silently empty baseline would resurrect every accepted finding.
    """
    try:
        document = json.loads(pathlib.Path(path).read_text())
    except OSError as exc:
        raise ReproError(f"cannot read lint baseline {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise ReproError(f"lint baseline {path} is not valid JSON: {exc}")
    fingerprints = document.get("fingerprints") if isinstance(document, dict) else None
    if not isinstance(fingerprints, list) or not all(
        isinstance(item, str) for item in fingerprints
    ):
        raise ReproError(
            f"lint baseline {path} must contain a 'fingerprints' string list"
        )
    return set(fingerprints)
