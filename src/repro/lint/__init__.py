"""``repro lint`` — AST-based static invariant checking.

The reproduction's headline guarantees (bit-identical runs, memoized ==
cold recomputation, telemetry that validates against its schema) are
*invariants of the source*, not of any particular run.  This package
derives them statically, the way WCET/interference analyses derive
bounds from the program rather than sampling them: every rule encodes
one invariant the test suite otherwise only spot-checks.

Layout:

* :mod:`repro.lint.engine` — file walking, per-file AST dispatch
  (optionally fanned out over ``--jobs`` worker processes with
  byte-identical merged output), suppression comments
  (``# repro: lint-ok RPR### -- reason``), and baseline filtering;
* :mod:`repro.lint.graph` — the whole-program layer: per-file
  :class:`~repro.lint.graph.summary.ModuleSummary` extraction and the
  :class:`~repro.lint.graph.builder.ProjectGraph` symbol table / call
  graph with deterministic reachability, which corpus-level rules
  query;
* :mod:`repro.lint.effects` — per-function effect signatures
  (mutations, captures, escaping exception types) extracted per file
  and closed over the call graph by an SCC fixpoint; the
  plugin-contract, mutation-after-freeze, and exception-flow families
  consume them via ``consume_effects``;
* :mod:`repro.lint.dimflow` — per-function *unit* signatures
  (per-parameter/return dimensions under a small algebra of seconds,
  bytes, counts, and derived rates) closed over the same graph by the
  same SCC scheduling; the dimflow family (RPR810+) consumes them via
  ``consume_units`` and ``--units-output`` serializes the table;
* :mod:`repro.lint.rules` — the rule registry.  Each rule is a class
  with a stable id (``RPR###``), a severity, and an ``autofixable``
  flag; rules are grouped into families (determinism, memo-safety,
  telemetry, executor hygiene, API hygiene, transitive determinism,
  pool safety, dimensional consistency, plugin-contract,
  mutation-after-freeze, exception-flow, dimflow);
* :mod:`repro.lint.reporters` — ``text``, ``json``, and ``sarif``
  renderers plus baseline read/write (fingerprints are
  whitespace-normalized, so baselines survive reformatting);
* :mod:`repro.lint.cache` — the ``--cache-dir`` content-hash scan
  cache (warm runs skip unchanged files, byte-identically);
* :mod:`repro.lint.explain` — ``--explain RPR###`` rendering.

Run it as ``python -m repro lint [paths] [--rule RPR###] [--format
text|json|sarif] [--baseline PATH] [--jobs N] [--cache-dir DIR]``; the
rule catalogue lives in ``docs/static_analysis.md`` (and is
parity-tested against the registry, so it cannot drift).
"""

from repro.lint.engine import (
    FileContext,
    FileScan,
    Finding,
    LintEngine,
    LintReport,
    Suppressions,
    iter_python_files,
    layer_for_path,
)
from repro.lint.explain import explain_rule
from repro.lint.graph import ModuleSummary, ProjectGraph, extract_summary
from repro.lint.reporters import (
    findings_to_baseline,
    load_baseline,
    normalize_fingerprint,
    render_json,
    render_sarif,
    render_text,
    write_baseline,
)
from repro.lint.rules import (
    DETERMINISTIC_LAYERS,
    META_RULES,
    RULE_FAMILIES,
    Rule,
    all_rule_ids,
    build_rules,
    rule_catalogue,
)

__all__ = [
    "DETERMINISTIC_LAYERS",
    "FileContext",
    "FileScan",
    "Finding",
    "LintEngine",
    "LintReport",
    "META_RULES",
    "ModuleSummary",
    "ProjectGraph",
    "RULE_FAMILIES",
    "Rule",
    "Suppressions",
    "all_rule_ids",
    "build_rules",
    "explain_rule",
    "extract_summary",
    "findings_to_baseline",
    "iter_python_files",
    "layer_for_path",
    "load_baseline",
    "normalize_fingerprint",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_catalogue",
    "write_baseline",
]
