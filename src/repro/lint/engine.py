"""Lint engine: file discovery, AST dispatch, suppressions, baselines.

The engine is deliberately small: it reads each file once, parses it
once, hands the tree to every applicable rule, then runs each rule's
corpus-level ``finalize`` hook.  Everything rule-specific lives in
:mod:`repro.lint.rules`; everything presentation-specific lives in
:mod:`repro.lint.reporters`.

The per-file pass (parse, per-file rules, suppression filtering,
module-summary extraction) is a pure function of one file, so
``jobs > 1`` fans it out over a process pool: files are chunked in
discovery order, each worker returns picklable :class:`FileScan`
records, and the parent merges them back in that same order — output
is byte-identical to the serial run.  The whole-program phase that
follows (corpus rules, project call graph, then the effect-signature
fixpoint for rules that set ``needs_effects``, ``finalize``) always
runs single-process in the parent, over the merged summaries.

Two findings are emitted by the engine itself rather than by a rule
class (they are registered as *meta rules* so ``--rule`` filtering,
the docs catalogue, and the fixtures corpus treat them uniformly):

* ``RPR001`` — a file that does not parse;
* ``RPR002`` — a malformed suppression comment (missing reason, or an
  unknown rule id).

Suppression syntax (reason required — an unexplained suppression is
itself a finding)::

    do_risky_thing()  # repro: lint-ok RPR403 -- ordering proven fixed here

A suppression comment on its own line applies to the next line, so
long statements stay readable.
"""

from __future__ import annotations

import ast
import re
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ReproError
from repro.lint.graph.summary import ModuleSummary, extract_summary

__all__ = [
    "EXCLUDED_DIR_NAMES",
    "FileContext",
    "FileScan",
    "Finding",
    "LintEngine",
    "LintReport",
    "POOL_BOUNDARY",
    "Suppressions",
    "iter_python_files",
    "layer_for_path",
]

#: Functions that execute inside ``--jobs`` worker processes (the
#: pool-safety rules treat these as worker-reachable roots).
POOL_BOUNDARY: Tuple[str, ...] = ("_scan_worker",)

#: Directory names the recursive walker never descends into.  The lint
#: fixtures corpus is excluded by name: its known-bad snippets exist to
#: fail, and must not make ``repro lint tests`` fail with them.
#: Explicitly listed *files* are always linted, excluded or not.
EXCLUDED_DIR_NAMES = frozenset(
    {
        "__pycache__",
        ".git",
        ".repro-cache",
        "build",
        "dist",
        "fixtures",
        "node_modules",
    }
)

#: Package sub-directories of ``repro`` that name an architectural
#: layer; see :func:`layer_for_path`.
_LAYER_DIRS = frozenset(
    {
        "analysis",
        "core",
        "lint",
        "memory",
        "runtime",
        "sim",
        "stream",
        "workloads",
    }
)


def layer_for_path(path: Path) -> str:
    """Architectural layer of a file, derived from its path.

    ``.../repro/<layer>/...`` maps to ``<layer>`` (this also holds for
    fixture corpora that embed a ``repro/<layer>/`` spine, which is how
    layer-scoped rules are exercised by tests); a module directly under
    ``repro/`` (``units.py``, ``cli.py``) maps to ``"root"``; anything
    under a ``tests`` directory maps to ``"tests"``; everything else to
    ``"unknown"`` (no layer-scoped rule applies there).
    """
    parts = path.parts
    for index, part in enumerate(parts[:-1]):
        if part == "repro" and parts[index + 1] in _LAYER_DIRS:
            return parts[index + 1]
    if "repro" in parts[:-1]:
        return "root"
    if "tests" in parts:
        return "tests"
    return "unknown"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``line`` is 1-based; corpus-level findings (no single source line)
    use line 0.  ``source_line`` carries the stripped text of the
    offending line so baselines survive unrelated line-number shifts.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    source_line: str = ""

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def fingerprint(self) -> str:
        """Stable identity used by ``--baseline`` filtering.

        Line numbers are deliberately absent and the source context is
        whitespace-collapsed, so a fingerprint survives insertions
        above the finding *and* reformatting around it (re-indentation,
        wrapped arguments).  ``load_baseline`` applies the same
        collapse to old baselines, so files written before the
        normalization keep matching.
        """
        context = " ".join(self.source_line.split())
        return f"{self.rule}:{self.path}:{context}"


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may inspect about one file."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    lines: Tuple[str, ...]
    layer: str

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*lint-ok\s+(?P<id>RPR\d{3})\s*(?:[-—:,]+\s*(?P<reason>\S.*))?$"
)


class Suppressions:
    """Per-file map of ``# repro: lint-ok`` directives.

    A directive on a line with code applies to that line; a directive
    on a comment-only line applies to the next line.  Malformed
    directives (missing reason, unknown rule id) surface as ``RPR002``
    findings instead of silently suppressing nothing.
    """

    def __init__(
        self,
        ctx: FileContext,
        known_ids: Set[str],
    ) -> None:
        self.by_line: Dict[int, Set[str]] = {}
        self.errors: List[Finding] = []
        for lineno, text in enumerate(ctx.lines, start=1):
            match = _SUPPRESSION_RE.search(text)
            if match is None:
                continue
            rule_id = match.group("id")
            reason = (match.group("reason") or "").strip()
            if rule_id not in known_ids:
                self.errors.append(
                    Finding(
                        rule="RPR002",
                        severity="error",
                        path=ctx.display_path,
                        line=lineno,
                        col=match.start() + 1,
                        message=(
                            f"suppression names unknown rule {rule_id}; "
                            "known ids are RPR###, see docs/static_analysis.md"
                        ),
                        source_line=ctx.line_text(lineno),
                    )
                )
                continue
            if not reason:
                self.errors.append(
                    Finding(
                        rule="RPR002",
                        severity="error",
                        path=ctx.display_path,
                        line=lineno,
                        col=match.start() + 1,
                        message=(
                            f"suppression of {rule_id} has no reason; write "
                            f"'# repro: lint-ok {rule_id} -- why it is safe'"
                        ),
                        source_line=ctx.line_text(lineno),
                    )
                )
                continue
            target = lineno
            if text.lstrip().startswith("#"):
                target = lineno + 1  # comment-only line guards the next one
            self.by_line.setdefault(target, set()).add(rule_id)

    def covers(self, finding: Finding) -> bool:
        return finding.rule in self.by_line.get(finding.line, ())


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every Python file under ``paths``.

    Directories are walked recursively, skipping
    :data:`EXCLUDED_DIR_NAMES` (and ``*.egg-info``); a path given
    explicitly is yielded even if an exclusion would have hidden it,
    so ``repro lint tests/lint/fixtures/... `` works for fixture
    authors.
    """
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                relative = candidate.relative_to(path)
                skip = any(
                    part in EXCLUDED_DIR_NAMES or part.endswith(".egg-info")
                    for part in relative.parts[:-1]
                )
                if not skip:
                    yield candidate
        elif path.suffix == ".py":
            yield path
        elif not path.exists():
            raise ReproError(f"lint path does not exist: {path}")


@dataclass(frozen=True)
class FileScan:
    """Picklable product of the per-file pass over one file.

    ``findings`` are already suppression-filtered; the surviving
    suppression map rides along so corpus-level findings (anchored to
    a line of this file but produced after every file was scanned)
    honour ``# repro: lint-ok`` directives too.
    """

    display_path: str
    parse_failed: bool = False
    findings: Tuple[Finding, ...] = ()
    suppressed: int = 0
    suppression_lines: Tuple[Tuple[int, Tuple[str, ...]], ...] = ()
    summary: Optional[ModuleSummary] = None


def _scan_one(
    path: Path,
    display_path: str,
    rules: Sequence["Rule"],  # noqa: F821 — repro.lint.rules.base
    known_ids: Set[str],
    need_summary: bool,
) -> FileScan:
    """Parse one file, run the per-file rules, extract its summary."""
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError):
        return FileScan(display_path=display_path, parse_failed=True)
    ctx = FileContext(
        path=path,
        display_path=display_path,
        source=source,
        tree=tree,
        lines=tuple(source.splitlines()),
        layer=layer_for_path(Path(display_path)),
    )
    suppressions = Suppressions(ctx, known_ids)
    raw: List[Finding] = list(suppressions.errors)
    for rule in rules:
        if rule.applies_to(ctx):
            raw.extend(rule.check(ctx))
    kept: List[Finding] = []
    suppressed = 0
    for finding in raw:
        if suppressions.covers(finding):
            suppressed += 1
        else:
            kept.append(finding)
    summary = None
    if need_summary:
        summary = extract_summary(tree, display_path, ctx.layer)
    return FileScan(
        display_path=display_path,
        findings=tuple(kept),
        suppressed=suppressed,
        suppression_lines=tuple(
            (line, tuple(sorted(ids)))
            for line, ids in sorted(suppressions.by_line.items())
        ),
        summary=summary,
    )


def _scan_worker(
    batch: Sequence[Tuple[str, str]],
    rules: Sequence["Rule"],  # noqa: F821
    known_ids: Set[str],
    need_summary: bool,
) -> List[FileScan]:
    """Worker-side entry point: scan one contiguous chunk of files."""
    return [
        _scan_one(Path(path), display, rules, known_ids, need_summary)
        for path, display in batch
    ]


@dataclass
class LintReport:
    """Outcome of one engine run."""

    findings: List[Finding]
    files_scanned: int
    suppressed: int = 0
    baselined: int = 0
    wall_seconds: float = 0.0
    jobs: int = 1
    #: Files whose per-file pass was served from ``--cache-dir``.
    cache_hits: int = 0

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == "error")

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity == "warning")

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


@dataclass
class LintEngine:
    """Runs a rule set over a file corpus.

    Args:
        rules: Rule instances (fresh per run — corpus rules accumulate
            state between files).  Build them with
            :func:`repro.lint.rules.build_rules`.
        enabled: Optional restriction to a set of rule ids (the CLI's
            ``--rule``); meta findings (RPR001/RPR002) obey it too.
        root: Paths in findings are rendered relative to this
            directory when possible, for stable output across checkouts.
        baseline: Fingerprints of findings to drop (pre-existing debt
            that has been explicitly accepted); see
            :func:`repro.lint.reporters.load_baseline`.
        jobs: Worker processes for the per-file pass (1 = in-process;
            merged output is identical either way).
        want_graph: Build the project call graph even when no enabled
            rule asks for it (``--graph-output`` serializes it).
        want_units: Run the interprocedural unit fixpoint even when no
            enabled rule asks for it (``--units-output`` serializes the
            inferred signature table); implies the graph.
        cache_dir: Directory for the content-hash scan cache (the
            CLI's ``--cache-dir``); ``None`` disables caching.  See
            :mod:`repro.lint.cache` — warm runs are byte-identical to
            cold ones.

    After :meth:`run`, :attr:`graph` holds the
    :class:`~repro.lint.graph.builder.ProjectGraph` built for this
    corpus (or ``None`` when nothing needed one), and :attr:`units`
    the :class:`~repro.lint.dimflow.fixpoint.UnitAnalysis` when a
    ``needs_units`` rule ran or :attr:`want_units` was set.
    """

    rules: List["Rule"]  # noqa: F821 — see repro.lint.rules.base
    enabled: Optional[Set[str]] = None
    root: Optional[Path] = None
    baseline: Set[str] = field(default_factory=set)
    jobs: int = 1
    want_graph: bool = False
    want_units: bool = False
    cache_dir: Optional[Path] = None
    graph: Optional["ProjectGraph"] = field(  # noqa: F821
        default=None, init=False, repr=False
    )
    units: Optional["UnitAnalysis"] = field(  # noqa: F821
        default=None, init=False, repr=False
    )

    def run(self, paths: Sequence[Path]) -> LintReport:
        started = time.monotonic()
        if self.jobs < 1:
            raise ReproError(f"lint --jobs must be >= 1, got {self.jobs}")
        files = list(dict.fromkeys(iter_python_files([Path(p) for p in paths])))
        known_ids = self._known_ids()
        per_file_rules = [r for r in self.rules if not r.corpus_level]
        corpus_rules = [r for r in self.rules if r.corpus_level]
        build_graph = (
            self.want_graph
            or self.want_units
            or any(r.needs_graph for r in self.rules)
        )
        need_summary = build_graph or bool(corpus_rules)

        scans, cache_hits = self._scan_files(
            files, per_file_rules, known_ids, need_summary
        )

        collected: List[Finding] = []
        suppressed = 0
        for file_path, scan in zip(files, scans):
            if scan.parse_failed:
                collected.append(self._parse_failure(file_path))
            else:
                collected.extend(scan.findings)
                suppressed += scan.suppressed

        summaries = [s.summary for s in scans if s.summary is not None]
        if build_graph:
            from repro.lint.graph.builder import ProjectGraph

            self.graph = ProjectGraph(summaries)
        for rule in corpus_rules:
            for summary in summaries:
                rule.consume_summary(summary)
        for rule in self.rules:
            if rule.needs_graph and self.graph is not None:
                rule.consume_graph(self.graph)
        if self.graph is not None and any(
            getattr(r, "needs_effects", False) for r in self.rules
        ):
            from repro.lint.effects.fixpoint import EffectAnalysis

            analysis = EffectAnalysis(self.graph, summaries)
            for rule in self.rules:
                if getattr(rule, "needs_effects", False):
                    rule.consume_effects(analysis)
        if self.graph is not None and (
            self.want_units
            or any(getattr(r, "needs_units", False) for r in self.rules)
        ):
            from repro.lint.dimflow.fixpoint import UnitAnalysis

            self.units = UnitAnalysis(self.graph, summaries)
            for rule in self.rules:
                if getattr(rule, "needs_units", False):
                    rule.consume_units(self.units)

        suppression_maps = {
            scan.display_path: dict(scan.suppression_lines) for scan in scans
        }
        for rule in self.rules:
            for finding in rule.finalize():
                lines = suppression_maps.get(finding.path, {})
                if finding.rule in lines.get(finding.line, ()):
                    suppressed += 1
                else:
                    collected.append(finding)

        if self.enabled is not None:
            collected = [f for f in collected if f.rule in self.enabled]
        baselined = 0
        if self.baseline:
            kept = []
            for finding in collected:
                if finding.fingerprint() in self.baseline:
                    baselined += 1
                else:
                    kept.append(finding)
            collected = kept
        collected.sort(key=Finding.sort_key)
        return LintReport(
            findings=collected,
            files_scanned=len(files),
            suppressed=suppressed,
            baselined=baselined,
            wall_seconds=time.monotonic() - started,
            jobs=self.jobs,
            cache_hits=cache_hits,
        )

    # ------------------------------------------------------------------

    def _scan_files(
        self,
        files: Sequence[Path],
        rules: Sequence["Rule"],  # noqa: F821
        known_ids: Set[str],
        need_summary: bool,
    ) -> Tuple[List[FileScan], int]:
        """Per-file pass, serial or fanned out; order follows ``files``.

        With ``cache_dir`` set, files whose content hash (plus run
        token) has a cached :class:`FileScan` skip scanning entirely;
        only the misses go to the pool.  The merged result is
        positionally identical to an uncached run.
        """
        pairs = [(str(path), self._display(path)) for path in files]
        cache = None
        cache_keys: Dict[int, str] = {}
        results: Dict[int, FileScan] = {}
        if self.cache_dir is not None:
            from repro.lint.cache import ScanCache, cache_token

            cache = ScanCache(
                Path(self.cache_dir),
                cache_token(rules, known_ids, need_summary),
            )
            for index, (p, display) in enumerate(pairs):
                try:
                    content = Path(p).read_bytes()
                except OSError:
                    continue  # unreadable: let _scan_one report it
                key = cache.key(display, content)
                cache_keys[index] = key
                hit = cache.load(key)
                if hit is not None:
                    results[index] = hit
        pending = [
            (index, pair)
            for index, pair in enumerate(pairs)
            if index not in results
        ]
        if self.jobs == 1 or len(pending) < 2:
            fresh = [
                _scan_one(Path(p), display, rules, known_ids, need_summary)
                for _, (p, display) in pending
            ]
        else:
            workers = min(self.jobs, len(pending))
            chunk = max(
                1, (len(pending) + workers * 4 - 1) // (workers * 4)
            )
            batches = [
                [pair for _, pair in pending[start:start + chunk]]
                for start in range(0, len(pending), chunk)
            ]
            fresh = []
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(
                        _scan_worker, batch, rules, known_ids, need_summary
                    )
                    for batch in batches
                ]
                for future in futures:  # submission order == file order
                    fresh.extend(future.result())
        for (index, _), scan in zip(pending, fresh):
            results[index] = scan
            if cache is not None and index in cache_keys:
                cache.store(cache_keys[index], scan)
        return [results[index] for index in range(len(pairs))], (
            cache.hits if cache is not None else 0
        )

    def _known_ids(self) -> Set[str]:
        # A suppression naming any registered rule is well-formed even
        # when --rule restricts which rules actually run.
        from repro.lint.rules import all_rule_ids

        return set(all_rule_ids()) | {rule.id for rule in self.rules}

    def _display(self, path: Path) -> str:
        root = self.root or Path.cwd()
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    def _parse_failure(self, path: Path) -> Finding:
        return Finding(
            rule="RPR001",
            severity="error",
            path=self._display(path),
            line=0,
            col=0,
            message="file does not parse as Python (or is unreadable)",
        )
