"""Interprocedural unit inference: SCC fixpoint over the call graph.

:class:`UnitAnalysis` joins every file's local
:class:`~repro.lint.dimflow.model.ModuleUnits` facts against the
:class:`~repro.lint.graph.builder.ProjectGraph`, resolves each
recorded call with the graph's own resolver, and computes one
:class:`~repro.lint.dimflow.model.UnitSignature` per function:

* **declared** parameter units come from ``repro.units.UNIT_PARAMS``
  (which wins) or the ``_seconds``/``_bytes``/... name-suffix
  convention, and are *contracts*: call sites never widen them —
  an argument whose unit disagrees is an RPR810 finding instead;
* **inferred** parameter units are the lattice join of every resolved
  call site's argument unit (dimensionless literals contribute
  nothing; two different concrete dimensions join to the honest
  :data:`~repro.lint.dimflow.model.TOP_UNIT`);
* **return** units join the evaluated ``return`` sites — ``None`` as
  soon as any site is unknown, ``⊤`` on conflict, and fixed by
  ``repro.units.UNIT_RETURNS`` when the function is declared there.

Scheduling reuses the effect analysis's iterative Tarjan
(:func:`repro.lint.effects.fixpoint._tarjan`): components come out
callees-first, so each full sweep recomputes returns bottom-up and
then pushes argument units top-down, repeating until nothing moves.
Every slot climbs a finite three-tier lattice (unknown -> concrete ->
``⊤``) monotonically, so the loop terminates; sorted iteration and
commutative joins make the result independent of sweep order.

Functions listed in ``repro.units.UNIT_POLYMORPHIC`` are exempt from
all of it: their parameters accept any dimension, so sites neither pin
them nor get checked against them.

Provenance is kept per ``(function, parameter, unit)`` — the
deterministically-first call site that contributed the unit — so
:meth:`UnitAnalysis.flow_witness` can walk an argument's term back
through inferred parameters to a concrete origin and findings can
print the full propagation chain, RPR601-style.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.dimflow.algebra import (
    SCALAR,
    mul_units,
    pow_unit,
    unit_of_name,
)
from repro.lint.dimflow.model import (
    TOP_UNIT,
    ModuleUnits,
    UnitCallSite,
    UnitFacts,
    UnitSignature,
    UnitTerm,
)
from repro.lint.effects.fixpoint import _tarjan
from repro.lint.graph.summary import CallRef, ModuleSummary
from repro.units import UNIT_PARAMS, UNIT_POLYMORPHIC, UNIT_RETURNS

__all__ = ["AttrEvidence", "UnitAnalysis"]


@dataclass(frozen=True)
class AttrEvidence:
    """One unit observation for a class attribute: an assignment whose
    value had a known dimension, or the attribute's own name suffix."""

    unit: str
    label: str
    path: str
    lineno: int
    layer: str = ""


def _join(left: Optional[str], right: Optional[str]) -> Optional[str]:
    """Lattice join: unknown < concrete dimension < ``⊤``."""
    if left is None:
        return right
    if right is None or left == right:
        return left
    return TOP_UNIT


#: Per-call resolution: ("fixed", unit) for UNIT_RETURNS-declared
#: callables, ("poly",) for UNIT_POLYMORPHIC, ("callee", key, is_ctor)
#: for a project function with facts, ("unknown",) otherwise.
_CallInfo = Tuple


class UnitAnalysis:
    """Unit signatures for every function in a linted corpus."""

    def __init__(self, graph, summaries: Sequence[ModuleSummary]) -> None:
        self._graph = graph
        self._facts: Dict[str, UnitFacts] = {}
        self._namespace_of: Dict[str, str] = {}
        self._module_units: List[Tuple[str, str, str, ModuleUnits]] = []
        for summary in summaries:
            namespace = summary.module or summary.path
            units = summary.units
            if units is None:
                continue
            self._module_units.append(
                (namespace, summary.path, summary.layer, units)
            )
            for facts in units.functions:
                key = f"{namespace}::{facts.qualname}"
                if key not in self._facts:
                    self._facts[key] = facts
                    self._namespace_of[key] = namespace
        self._call_info: Dict[str, Tuple[_CallInfo, ...]] = {}
        self._build_call_info()
        self._params: Dict[str, Dict[str, str]] = {}
        self._returns: Dict[str, Optional[str]] = {}
        self._declared: Dict[str, Tuple[str, ...]] = {}
        self._fixed_returns: Dict[str, str] = {}
        self._polymorphic: Dict[str, bool] = {}
        self._provenance: Dict[
            Tuple[str, str, str], Tuple[str, int, Optional[UnitTerm]]
        ] = {}
        self._run_fixpoint()
        self._signatures: Dict[str, UnitSignature] = {
            key: UnitSignature(
                key=key,
                params=tuple(sorted(self._params[key].items())),
                declared=self._declared[key],
                returns=self._returns[key],
                polymorphic=self._polymorphic[key],
            )
            for key in self._facts
        }
        self._attr_evidence: Dict[Tuple[str, str], List[AttrEvidence]] = {}
        self._collect_attr_evidence()

    # -- public queries ------------------------------------------------

    def keys(self) -> List[str]:
        return sorted(self._facts)

    def facts(self, key: str) -> Optional[UnitFacts]:
        return self._facts.get(key)

    def signature(self, key: str) -> UnitSignature:
        found = self._signatures.get(key)
        if found is not None:
            return found
        return UnitSignature(key=key)

    def canonical_name(self, key: str) -> str:
        """``namespace.qualname`` — the UNIT_* table lookup key."""
        namespace, _, qualname = key.partition("::")
        return f"{namespace}.{qualname}"

    def node_path(self, key: str) -> str:
        node = self._graph.node(key)
        return node.path if node is not None else ""

    def node_layer(self, key: str) -> str:
        node = self._graph.node(key)
        return node.layer if node is not None else ""

    def node_label(self, key: str) -> str:
        """Human-readable name for ``key`` (call-path rendering)."""
        return self._node_label(key)

    def render_path(self, path: Tuple[str, ...]) -> str:
        return self._graph.render_path(path)

    def call_edges(
        self, key: str
    ) -> List[Tuple[UnitCallSite, Optional[str], bool]]:
        """``(call, callee_key_or_None, is_ctor)`` per recorded call."""
        facts = self._facts.get(key)
        if facts is None:
            return []
        out: List[Tuple[UnitCallSite, Optional[str], bool]] = []
        for call, info in zip(facts.calls, self._call_info[key]):
            if info[0] == "callee":
                out.append((call, info[1], info[2]))
            else:
                out.append((call, None, False))
        return out

    def evaluate(self, key: str, term: Optional[UnitTerm]) -> Optional[str]:
        """Post-fixpoint unit of ``term`` in ``key``'s frame.

        ``None`` = no evidence; ``⊤`` = conflicting evidence.  Rules
        must treat both as silence.
        """
        if term is None:
            return None
        if term.kind == "known":
            return term.unit
        if term.kind == "param":
            if self._polymorphic.get(key, False):
                return None
            return self._params.get(key, {}).get(term.name)
        if term.kind == "call":
            return self._call_return(key, term.index)
        if term.kind == "product":
            result = SCALAR
            for factor, exponent in term.factors:
                unit = self.evaluate(key, factor)
                if unit is None:
                    return None
                if unit == TOP_UNIT:
                    return TOP_UNIT
                result = mul_units(result, pow_unit(unit, exponent))
            return result
        return None

    def argument_bindings(
        self, key: str, call: UnitCallSite, callee_key: str, is_ctor: bool
    ) -> List[Tuple[str, Optional[UnitTerm]]]:
        """``(callee_param, caller_arg_term)`` pairs for one call."""
        callee = self._facts.get(callee_key)
        if callee is None:
            return []
        params = list(callee.params)
        offset = 0
        if is_ctor:
            offset = 1  # params[0] is the freshly constructed object
        elif callee.class_name is not None and params and params[0] in (
            "self",
            "cls",
        ):
            first = (call.dotted or "").split(".")[0]
            offset = 0 if first == callee.class_name else 1
        out: List[Tuple[str, Optional[UnitTerm]]] = []
        for index, term in enumerate(call.args):
            position = index + offset
            if position < len(params):
                out.append((params[position], term))
        for name, term in call.kwargs:
            if name in callee.params or name in callee.kwonly:
                out.append((name, term))
        return out

    def flow_witness(
        self, key: str, term: Optional[UnitTerm], unit: str
    ) -> Tuple[str, ...]:
        """Call path (origin first, ``key`` last) explaining how the
        unit ``unit`` reached ``term`` in ``key``'s frame.

        Walks parameter references back through the recorded
        provenance until a concrete origin (or a cycle) stops it; a
        term that is already locally concrete yields ``(key,)``.
        """
        path = [key]
        seen = {key}
        current_key, current_term = key, term
        while current_term is not None and current_term.kind == "param":
            entry = self._provenance.get(
                (current_key, current_term.name, unit)
            )
            if entry is None:
                break
            caller, _, caller_term = entry
            if caller in seen:
                break
            path.append(caller)
            seen.add(caller)
            current_key, current_term = caller, caller_term
        return tuple(reversed(path))

    def attribute_evidence(
        self,
    ) -> Dict[Tuple[str, str], List[AttrEvidence]]:
        """``(canonical class, attr)`` -> every unit observation."""
        return self._attr_evidence

    # -- manifest ------------------------------------------------------

    def to_json(self) -> str:
        """The ``--units-output`` manifest (stable, sorted)."""
        functions: Dict[str, Dict] = {}
        for key in sorted(self._facts):
            signature = self._signatures[key]
            entry: Dict = {}
            if signature.polymorphic:
                entry["polymorphic"] = True
            params = {
                name: unit for name, unit in signature.params if unit
            }
            if params:
                entry["params"] = params
            if signature.declared:
                entry["declared"] = sorted(signature.declared)
            if signature.returns:
                entry["returns"] = signature.returns
            if entry:
                functions[key] = entry
        attributes: Dict[str, str] = {}
        for (class_name, attr), evidence in sorted(
            self._attr_evidence.items()
        ):
            joined: Optional[str] = None
            for item in evidence:
                if item.unit and item.unit != SCALAR:
                    joined = _join(joined, item.unit)
            if joined:
                attributes[f"{class_name}.{attr}"] = joined
        document = {
            "version": 1,
            "functions": functions,
            "attributes": attributes,
        }
        return json.dumps(document, indent=2, sort_keys=True) + "\n"

    # -- construction --------------------------------------------------

    def _build_call_info(self) -> None:
        for key in sorted(self._facts):
            infos: List[_CallInfo] = []
            for call in self._facts[key].calls:
                infos.append(self._resolve_one(key, call))
            self._call_info[key] = tuple(infos)

    def _resolve_one(self, key: str, call: UnitCallSite):
        canonical = call.canonical or call.dotted or ""
        if canonical in UNIT_RETURNS:
            return ("fixed", UNIT_RETURNS[canonical])
        if canonical in UNIT_POLYMORPHIC:
            return ("poly",)
        ref = CallRef(
            dotted=call.dotted,
            canonical=call.canonical,
            receiver_class=call.receiver_class,
            lineno=call.lineno,
        )
        target = self._graph.resolve_call(key, ref)
        if target is None:
            return ("unknown",)
        if isinstance(target, tuple):
            namespace, cls = target
            for ctor in ("__init__", "__post_init__"):
                ctor_key = f"{namespace}::{cls.name}.{ctor}"
                if ctor_key in self._facts:
                    return ("callee", ctor_key, True)
            return ("unknown",)
        callee_canonical = self.canonical_name(target.key)
        if callee_canonical in UNIT_RETURNS:
            return ("fixed", UNIT_RETURNS[callee_canonical])
        if callee_canonical in UNIT_POLYMORPHIC:
            return ("poly",)
        if target.key in self._facts:
            return ("callee", target.key, False)
        return ("unknown",)

    def _call_return(self, key: str, index: int) -> Optional[str]:
        infos = self._call_info.get(key, ())
        if index >= len(infos):
            return None
        info = infos[index]
        if info[0] == "fixed":
            return info[1]
        if info[0] == "callee":
            return self._returns.get(info[1])
        return None

    # -- fixpoint ------------------------------------------------------

    def _seed(self, key: str) -> None:
        facts = self._facts[key]
        canonical = self.canonical_name(key)
        polymorphic = canonical in UNIT_POLYMORPHIC
        self._polymorphic[key] = polymorphic
        declared_table = UNIT_PARAMS.get(canonical, {})
        params: Dict[str, str] = {}
        declared: List[str] = []
        if not polymorphic:
            for name in facts.params + facts.kwonly:
                if name in ("self", "cls"):
                    continue
                unit = declared_table.get(name) or unit_of_name(name)
                if unit is not None:
                    params[name] = unit
                    declared.append(name)
        self._params[key] = params
        self._declared[key] = tuple(sorted(declared))
        if canonical in UNIT_RETURNS and not polymorphic:
            self._fixed_returns[key] = UNIT_RETURNS[canonical]
            self._returns[key] = UNIT_RETURNS[canonical]
        else:
            self._returns[key] = None

    def _compute_returns(self, key: str) -> Optional[str]:
        if key in self._fixed_returns:
            return self._fixed_returns[key]
        if self._polymorphic[key]:
            return None
        facts = self._facts[key]
        if not facts.returns:
            return None
        concrete: Optional[str] = None
        saw_scalar = False
        for site in facts.returns:
            unit = self.evaluate(key, site.term)
            if unit is None:
                return None
            if unit == TOP_UNIT:
                return TOP_UNIT
            if unit == SCALAR:
                saw_scalar = True
                continue
            concrete = _join(concrete, unit)
        if concrete is not None:
            return concrete
        return SCALAR if saw_scalar else None

    def _push_arguments(self, key: str) -> bool:
        changed = False
        facts = self._facts[key]
        for call, info in zip(facts.calls, self._call_info[key]):
            if info[0] != "callee":
                continue
            callee_key, is_ctor = info[1], info[2]
            if self._polymorphic[callee_key]:
                continue
            declared = self._declared[callee_key]
            callee_params = self._params[callee_key]
            for param, term in self.argument_bindings(
                key, call, callee_key, is_ctor
            ):
                if param in declared:
                    continue  # a contract — mismatches are findings
                unit = self.evaluate(key, term)
                if unit is None or unit in (SCALAR, TOP_UNIT):
                    continue
                joined = _join(callee_params.get(param), unit)
                if joined != callee_params.get(param):
                    callee_params[param] = joined  # type: ignore[assignment]
                    changed = True
                prov_key = (callee_key, param, unit)
                entry = (key, call.lineno, term)
                existing = self._provenance.get(prov_key)
                if existing is None or (entry[0], entry[1]) < (
                    existing[0],
                    existing[1],
                ):
                    self._provenance[prov_key] = entry
        return changed

    def _run_fixpoint(self) -> None:
        keys = sorted(self._facts)
        for key in keys:
            self._seed(key)
        adjacency = {
            key: sorted(
                {
                    info[1]
                    for info in self._call_info[key]
                    if info[0] == "callee"
                }
            )
            for key in keys
        }
        order = [
            key
            for component in _tarjan(keys, adjacency)
            for key in component
        ]
        changed = True
        while changed:
            changed = False
            for key in order:  # callees-first: returns settle bottom-up
                updated = self._compute_returns(key)
                if updated != self._returns[key]:
                    self._returns[key] = updated
                    changed = True
            for key in reversed(order):  # callers-first: args flow down
                if self._push_arguments(key):
                    changed = True

    # -- attributes ----------------------------------------------------

    def _canonical_class(self, namespace: str, name: str) -> str:
        resolved = self._graph.resolve_type(namespace, name)
        if resolved is not None:
            return resolved
        if "." in name:
            return name
        return f"{namespace}.{name}"

    def _collect_attr_evidence(self) -> None:
        def note(
            class_name: str, attr: str, evidence: AttrEvidence
        ) -> None:
            self._attr_evidence.setdefault((class_name, attr), []).append(
                evidence
            )

        for namespace, path, layer, units in self._module_units:
            for record in units.class_attrs:
                canonical = self._canonical_class(
                    namespace, record.class_name
                )
                suffix = unit_of_name(record.attr)
                if suffix is not None:
                    note(
                        canonical,
                        record.attr,
                        AttrEvidence(
                            unit=suffix,
                            label="name suffix",
                            path=path,
                            lineno=record.lineno,
                            layer=layer,
                        ),
                    )
                if record.term is None:
                    continue
                unit = self.evaluate("", record.term)
                if unit and unit != TOP_UNIT and (
                    suffix is None or unit != suffix
                ):
                    note(
                        canonical,
                        record.attr,
                        AttrEvidence(
                            unit=unit,
                            label=f"class body of {canonical}",
                            path=path,
                            lineno=record.lineno,
                            layer=layer,
                        ),
                    )
        for key in sorted(self._facts):
            facts = self._facts[key]
            namespace = self._namespace_of[key]
            path = self.node_path(key)
            layer = self.node_layer(key)
            for write in facts.attr_writes:
                canonical = self._canonical_class(
                    namespace, write.class_name
                )
                suffix = unit_of_name(write.attr)
                seen = self._attr_evidence.get((canonical, write.attr))
                if suffix is not None and not any(
                    item.label == "name suffix" for item in (seen or [])
                ):
                    note(
                        canonical,
                        write.attr,
                        AttrEvidence(
                            unit=suffix,
                            label="name suffix",
                            path=path,
                            lineno=write.lineno,
                            layer=layer,
                        ),
                    )
                unit = self.evaluate(key, write.term)
                if unit and unit != TOP_UNIT:
                    note(
                        canonical,
                        write.attr,
                        AttrEvidence(
                            unit=unit,
                            label=self._node_label(key),
                            path=path,
                            lineno=write.lineno,
                            layer=layer,
                        ),
                    )
        for evidence in self._attr_evidence.values():
            evidence.sort(key=lambda e: (e.path, e.lineno, e.unit, e.label))

    def _node_label(self, key: str) -> str:
        node = self._graph.node(key)
        if node is not None:
            return node.label()
        return key
