"""Picklable data model of the unit-and-dimension analysis.

Like :mod:`repro.lint.effects.model`, this module is a *leaf* of plain
frozen dataclasses, so extraction can run inside ``--jobs`` worker
processes and ship its results across the pool boundary on the file's
:class:`~repro.lint.graph.summary.ModuleSummary`.

Two layers of record:

* :class:`ModuleUnits` / :class:`UnitFacts` — the *local* unit facts
  of one file: per-function return/argument/attribute/check sites,
  each carrying a symbolic :class:`UnitTerm`;
* :class:`UnitSignature` — the *transitive* per-function summary after
  the SCC fixpoint of
  :class:`~repro.lint.dimflow.fixpoint.UnitAnalysis`: one lattice
  value per parameter plus one for the return.

The lattice per slot is three-tiered: *unknown* (``None`` — no
evidence), a concrete dimension string from
:mod:`repro.lint.dimflow.algebra`, and the honest :data:`TOP_UNIT`
(``⊤`` — conflicting evidence, or dynamic dispatch).  Joining two
different concrete dimensions yields ``⊤``, never a guess, and no
rule treats ``⊤`` or unknown as evidence — exactly the effect
analysis's degradation-toward-silence contract.

A :class:`UnitTerm` is a tiny symbolic expression: a resolved
dimension, a reference to a parameter's (future) unit, a reference to
a call's (future) return unit, or a product of powers of sub-terms.
Division collapsing to unknown is exactly the blind spot the algebra
removed, so terms keep quotients as negative exponents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "TOP_UNIT",
    "AttrWrite",
    "CheckSite",
    "ClassAttr",
    "EmitField",
    "ModuleUnits",
    "ReturnSite",
    "UnitCallSite",
    "UnitFacts",
    "UnitProvenance",
    "UnitSignature",
    "UnitTerm",
]

#: The honest "conflicting/unknowable" lattice top.  Stored in
#: signatures (and the manifest) as a fact about *evidence*, never
#: used by a rule as a concrete dimension.
TOP_UNIT = "⊤"


@dataclass(frozen=True)
class UnitTerm:
    """One symbolic unit expression, evaluated after the fixpoint.

    ``kind`` selects the payload: ``"known"`` (``unit`` is a canonical
    dimension string, ``""`` = dimensionless), ``"param"`` (``name``
    is a parameter of the enclosing function), ``"call"`` (``index``
    into the enclosing :attr:`UnitFacts.calls`), or ``"product"``
    (``factors`` are ``(term, exponent)`` pairs — a quotient is an
    exponent of ``-1``).  An expression with *no* unit evidence is
    represented as ``None`` wherever ``Optional[UnitTerm]`` appears,
    not as a term kind.
    """

    kind: str
    unit: str = ""
    name: str = ""
    index: int = -1
    factors: Tuple[Tuple["UnitTerm", int], ...] = ()


@dataclass(frozen=True)
class UnitCallSite:
    """One call, annotated with the unit term of every argument."""

    dotted: Optional[str]
    canonical: Optional[str]
    receiver_class: Optional[str]
    lineno: int
    args: Tuple[Optional[UnitTerm], ...] = ()
    kwargs: Tuple[Tuple[str, Optional[UnitTerm]], ...] = ()


@dataclass(frozen=True)
class ReturnSite:
    """One ``return expr`` statement (bare returns are not recorded)."""

    lineno: int
    term: Optional[UnitTerm]


@dataclass(frozen=True)
class AttrWrite:
    """One ``self.<attr> = expr`` (or ctor-local ``obj.<attr> = expr``).

    ``class_name`` is the enclosing class for self-writes, or the
    constructor's canonical/dotted name for writes through a local
    built in the same scope (``cfg = ThrottleConfig(); cfg.x = ...``)
    — the fixpoint canonicalizes both against the project graph.
    """

    class_name: str
    attr: str
    lineno: int
    term: Optional[UnitTerm]


@dataclass(frozen=True)
class CheckSite:
    """One additive or comparison site between two unit terms.

    ``op`` is the operator's surface text (``+``, ``-``, ``<``, ...).
    The interprocedural rule (RPR813) only judges sites where at least
    one side was *not* locally resolvable — locally known-vs-known
    mixes belong to RPR801/802.
    """

    op: str
    lineno: int
    col: int
    left: Optional[UnitTerm]
    right: Optional[UnitTerm]


@dataclass(frozen=True)
class EmitField:
    """One unit-suffixed field of a telemetry emit dict literal."""

    event: str
    fieldname: str
    lineno: int
    term: Optional[UnitTerm]


@dataclass(frozen=True)
class UnitFacts:
    """Local unit facts of one function body."""

    qualname: str
    lineno: int
    class_name: Optional[str]
    params: Tuple[str, ...]
    kwonly: Tuple[str, ...] = ()
    returns: Tuple[ReturnSite, ...] = ()
    calls: Tuple[UnitCallSite, ...] = ()
    attr_writes: Tuple[AttrWrite, ...] = ()
    checks: Tuple[CheckSite, ...] = ()
    emit_fields: Tuple[EmitField, ...] = ()


@dataclass(frozen=True)
class ClassAttr:
    """One class-body attribute declaration (dataclass field, slot
    annotation, or class-level default) with its assigned term."""

    class_name: str
    attr: str
    lineno: int
    term: Optional[UnitTerm]


@dataclass(frozen=True)
class ModuleUnits:
    """Everything the unit fixpoint needs to know about one file."""

    functions: Tuple[UnitFacts, ...] = ()
    class_attrs: Tuple[ClassAttr, ...] = ()


@dataclass(frozen=True)
class UnitSignature:
    """Transitive unit summary of one function, post fixpoint.

    ``params`` maps each parameter with *any* evidence to its lattice
    value (a concrete dimension or :data:`TOP_UNIT`); parameters with
    no evidence are absent.  ``declared`` lists the parameters whose
    unit is a *contract* (name suffix or ``repro.units.UNIT_PARAMS``
    entry) rather than a call-site inference — argument mismatches
    against those are RPR810 findings, and call sites never widen
    them.  ``returns`` is ``None`` (unknown), a dimension, or ``⊤``.
    """

    key: str
    params: Tuple[Tuple[str, str], ...] = ()
    declared: Tuple[str, ...] = ()
    returns: Optional[str] = None
    polymorphic: bool = False

    def param_unit(self, name: str) -> Optional[str]:
        for param, unit in self.params:
            if param == name:
                return unit
        return None


@dataclass(frozen=True)
class UnitProvenance:
    """Why an inferred parameter carries its unit: one call site that
    contributed it.  ``term`` is the argument's term in the *caller*'s
    frame, so witnesses can keep walking toward a concrete origin."""

    caller: str
    lineno: int
    unit: str
    term: Optional[UnitTerm] = field(default=None, compare=False)
