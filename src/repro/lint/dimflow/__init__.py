"""Interprocedural unit-and-dimension inference (the RPR810+ layer).

Three modules, mirroring the effects package's split:

* :mod:`repro.lint.dimflow.algebra` — the dimension algebra (canonical
  unit strings, multiplication/division, the naming convention) shared
  with the expression-local RPR801/802 rules;
* :mod:`repro.lint.dimflow.model` — picklable local facts and the
  post-fixpoint :class:`~repro.lint.dimflow.model.UnitSignature`;
* :mod:`repro.lint.dimflow.extract` / :mod:`~repro.lint.dimflow.fixpoint`
  — the per-file extraction (runs in ``--jobs`` workers) and the
  whole-program SCC fixpoint (runs once, in-process).
"""

from repro.lint.dimflow.algebra import (
    SCALAR,
    UnitEvaluator,
    div_units,
    mul_units,
    parse_unit,
    pow_unit,
    render_unit,
    unit_of_name,
)
from repro.lint.dimflow.extract import extract_units
from repro.lint.dimflow.fixpoint import AttrEvidence, UnitAnalysis
from repro.lint.dimflow.model import (
    TOP_UNIT,
    AttrWrite,
    CheckSite,
    ClassAttr,
    EmitField,
    ModuleUnits,
    ReturnSite,
    UnitCallSite,
    UnitFacts,
    UnitProvenance,
    UnitSignature,
    UnitTerm,
)

__all__ = [
    "SCALAR",
    "TOP_UNIT",
    "AttrEvidence",
    "AttrWrite",
    "CheckSite",
    "ClassAttr",
    "EmitField",
    "ModuleUnits",
    "ReturnSite",
    "UnitAnalysis",
    "UnitCallSite",
    "UnitEvaluator",
    "UnitFacts",
    "UnitProvenance",
    "UnitSignature",
    "UnitTerm",
    "div_units",
    "extract_units",
    "mul_units",
    "parse_unit",
    "pow_unit",
    "render_unit",
    "unit_of_name",
]
