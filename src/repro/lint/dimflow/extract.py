"""Per-function local unit-fact extraction (the ``--jobs``-parallel half).

One linear, flow-sensitive walk per function body, building a symbolic
:class:`~repro.lint.dimflow.model.UnitTerm` for every expression the
interprocedural pass will care about:

* **assignments** thread terms through locals (``x = footprint_bytes``
  makes ``x`` a known ``bytes``; ``x = budget`` makes it a reference
  to the parameter ``budget``'s future unit; ``x = helper(...)`` a
  reference to that call's future return unit);
* **calls** record the term of every argument, so the fixpoint can
  flow units *into* callee parameters and argue about mismatches;
* **returns** record each ``return expr`` term (RPR811's evidence);
* **attribute writes** (``self.attr = expr``, and ``obj.attr = expr``
  through a constructor-built local) record which class attribute got
  which unit (RPR812's evidence);
* **check sites** record ``+``/``-``/comparison operand pairs where at
  least one side is only resolvable interprocedurally (RPR813's
  evidence — locally decidable mixes stay RPR801/802's), plus
  augmented ``+=``/``-=`` stores, which the expression-local rules
  never see;
* **telemetry emit fields**: in a dict literal carrying an ``"event"``
  key, every unit-suffixed field name is recorded with its value's
  term (RPR814's evidence).

Control flow is walked linearly (branch bodies in order, later
bindings overriding earlier ones) — the same honest imprecision as the
effect extractor, documented as a blind spot in the docs appendix.
Everything produced is a plain picklable record from
:mod:`repro.lint.dimflow.model`; resolution against other files
happens later, in :mod:`repro.lint.dimflow.fixpoint`.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.dimflow.algebra import SCALAR, unit_of_name
from repro.lint.dimflow.model import (
    AttrWrite,
    CheckSite,
    ClassAttr,
    EmitField,
    ModuleUnits,
    ReturnSite,
    UnitCallSite,
    UnitFacts,
    UnitTerm,
)
from repro.units import UNIT_CONSTANTS, UNIT_RETURNS

__all__ = ["extract_units"]

#: Builtin conversions that change representation, not dimension:
#: ``float(footprint_bytes)`` is still bytes.
_IDENTITY_CONVERSIONS = frozenset({"float", "int", "abs", "round"})

_COMPARE_OPS = {
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
    ast.Eq: "==",
    ast.NotEq: "!=",
}


def _dotted(node: ast.AST) -> Optional[str]:
    chain: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        chain.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    chain.append(current.id)
    return ".".join(reversed(chain))


def _is_local(term: Optional[UnitTerm]) -> bool:
    """Whether a term resolves without any interprocedural knowledge."""
    if term is None:
        return False
    if term.kind == "known":
        return True
    if term.kind == "product":
        return all(_is_local(factor) for factor, _ in term.factors)
    return False


def _known(unit: str) -> UnitTerm:
    return UnitTerm(kind="known", unit=unit)


class _UnitAnalyzer:
    """One flow-sensitive pass over one function body."""

    def __init__(
        self,
        node: ast.AST,
        qualname: str,
        class_name: Optional[str],
        bindings,  # repro.lint.graph.summary._Bindings
    ) -> None:
        self.node = node
        self.qualname = qualname
        self.class_name = class_name
        self.bindings = bindings
        args = node.args  # type: ignore[attr-defined]
        self.params = tuple(
            a.arg for a in list(args.posonlyargs) + list(args.args)
        )
        self.kwonly = tuple(a.arg for a in args.kwonlyargs)
        #: local name -> its current term (params start as references
        #: to their own future signature unit).
        self.env: Dict[str, UnitTerm] = {
            name: UnitTerm(kind="param", name=name)
            for name in set(self.params) | set(self.kwonly)
            if name not in ("self", "cls")
        }
        #: local name -> constructor canonical, for attribute writes
        #: through locals built in this scope.
        self.ctor_locals: Dict[str, str] = {}
        self.returns: List[ReturnSite] = []
        self.calls: List[UnitCallSite] = []
        self.attr_writes: List[AttrWrite] = []
        self.checks: List[CheckSite] = []
        self.emit_fields: List[EmitField] = []
        #: nested defs to analyze as their own functions.
        self.nested: List[Tuple[ast.AST, str, Optional[str]]] = []
        #: expression node id -> its term.  Each statement evaluates
        #: its value expression more than once (the generic scan plus
        #: the binding/return/check handler); memoizing keeps each
        #: call site and check recorded exactly once.  Safe because
        #: every expression node is evaluated under one env state.
        self._term_cache: Dict[int, Optional[UnitTerm]] = {}

    # -- entry ---------------------------------------------------------

    def run(self) -> UnitFacts:
        for statement in self.node.body:  # type: ignore[attr-defined]
            self._statement(statement)
        return UnitFacts(
            qualname=self.qualname,
            lineno=self.node.lineno,  # type: ignore[attr-defined]
            class_name=self.class_name,
            params=self.params,
            kwonly=self.kwonly,
            returns=tuple(self.returns),
            calls=tuple(self.calls),
            attr_writes=tuple(self.attr_writes),
            checks=tuple(self.checks),
            emit_fields=tuple(self.emit_fields),
        )

    # -- terms ---------------------------------------------------------

    def term_of(self, node: ast.expr) -> Optional[UnitTerm]:
        """Symbolic unit term of an expression; ``None`` = no evidence."""
        cache_key = id(node)
        if cache_key in self._term_cache:
            return self._term_cache[cache_key]
        term = self._term_of(node)
        self._term_cache[cache_key] = term
        return term

    def _term_of(self, node: ast.expr) -> Optional[UnitTerm]:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)) and not isinstance(
                node.value, bool
            ):
                return _known(SCALAR)
            return None
        if isinstance(node, ast.Name):
            bound = self.env.get(node.id)
            if bound is not None:
                return bound
            canonical = self.bindings.resolve(node)
            if canonical in UNIT_CONSTANTS:
                return _known(UNIT_CONSTANTS[canonical])
            unit = unit_of_name(node.id)
            return _known(unit) if unit is not None else None
        if isinstance(node, ast.Attribute):
            canonical = self.bindings.resolve(node)
            if canonical in UNIT_CONSTANTS:
                return _known(UNIT_CONSTANTS[canonical])
            unit = unit_of_name(node.attr)
            return _known(unit) if unit is not None else None
        if isinstance(node, ast.Call):
            return self._call_term(node)
        if isinstance(node, ast.UnaryOp):
            return self.term_of(node.operand)
        if isinstance(node, ast.BinOp):
            return self._binop_term(node)
        if isinstance(node, ast.IfExp):
            left = self.term_of(node.body)
            right = self.term_of(node.orelse)
            return left if left == right else None
        return None

    def _binop_term(self, node: ast.BinOp) -> Optional[UnitTerm]:
        left = self.term_of(node.left)
        right = self.term_of(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._note_check(
                "+" if isinstance(node.op, ast.Add) else "-",
                node,
                left,
                right,
            )
            if left is not None and left.kind == "known" and (
                left.unit == SCALAR
            ):
                return right if right is not None else left
            if right is not None and right.kind == "known" and (
                right.unit == SCALAR
            ):
                return left if left is not None else right
            return left if left is not None else right
        if isinstance(node.op, ast.Mult):
            if left is None or right is None:
                return None
            return UnitTerm(kind="product", factors=((left, 1), (right, 1)))
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            if left is None or right is None:
                return None
            return UnitTerm(kind="product", factors=((left, 1), (right, -1)))
        if isinstance(node.op, ast.Mod):
            return left
        if isinstance(node.op, ast.Pow):
            if (
                left is not None
                and isinstance(node.right, ast.Constant)
                and isinstance(node.right.value, int)
            ):
                return UnitTerm(
                    kind="product", factors=((left, node.right.value),)
                )
            return None
        return None

    def _call_term(self, node: ast.Call) -> Optional[UnitTerm]:
        canonical = self.bindings.resolve(node.func)
        dotted = _dotted(node.func)
        receiver_class = None
        if isinstance(node.func, ast.Attribute) and isinstance(
            node.func.value, ast.Name
        ):
            receiver_class = self.ctor_locals.get(node.func.value.id)
        # Evaluate the argument terms *before* claiming an index:
        # nested calls append themselves to ``self.calls`` during
        # evaluation, so the outer call's slot is only known after.
        arg_terms = tuple(self.term_of(arg) for arg in node.args)
        kwarg_terms = tuple(
            (keyword.arg, self.term_of(keyword.value))
            for keyword in node.keywords
            if keyword.arg is not None
        )
        index = len(self.calls)
        self.calls.append(
            UnitCallSite(
                dotted=dotted,
                canonical=canonical,
                receiver_class=receiver_class,
                lineno=node.lineno,
                args=arg_terms,
                kwargs=kwarg_terms,
            )
        )
        if (
            dotted in _IDENTITY_CONVERSIONS
            and canonical is None
            and len(arg_terms) == 1
        ):
            return arg_terms[0]
        known = UNIT_RETURNS.get(canonical or "")
        if known is None and canonical is None and dotted is not None:
            known = UNIT_RETURNS.get(dotted)
        if known is not None:
            return _known(known)
        return UnitTerm(kind="call", index=index)

    def _note_check(
        self,
        op: str,
        node: ast.AST,
        left: Optional[UnitTerm],
        right: Optional[UnitTerm],
    ) -> None:
        """Record a check site RPR813 can judge after the fixpoint.

        Sites where both sides are locally resolvable belong to the
        expression-local rules (RPR801/802) — recording them here too
        would double-report; sites where either side has no evidence
        at all can never fire.  Augmented stores (op ``+=``/``-=``)
        bypass the locality filter: no local rule sees them.
        """
        if left is None or right is None:
            return
        if (
            op not in ("+=", "-=")
            and _is_local(left)
            and _is_local(right)
        ):
            return
        self.checks.append(
            CheckSite(
                op=op,
                lineno=node.lineno,  # type: ignore[attr-defined]
                col=getattr(node, "col_offset", -1) + 1,
                left=left,
                right=right,
            )
        )

    # -- statements ----------------------------------------------------

    def _statement(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.nested.append(
                (node, f"{self.qualname}.{node.name}", self.class_name)
            )
            self.env.pop(node.name, None)
            return
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self.nested.append(
                        (child, f"{self.qualname}.{child.name}", node.name)
                    )
            return
        if isinstance(node, ast.Return):
            if node.value is not None and not (
                isinstance(node.value, ast.Constant)
                and node.value.value is None
            ):
                self._scan_expr(node.value)
                self.returns.append(
                    ReturnSite(lineno=node.lineno, term=self.term_of(node.value))
                )
            return
        if isinstance(node, ast.Assign):
            self._scan_expr(node.value)
            for target in node.targets:
                self._assign_target(target, node.value, node.lineno)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._scan_expr(node.value)
                self._assign_target(node.target, node.value, node.lineno)
            elif isinstance(node.target, ast.Name):
                self.env.pop(node.target.id, None)
            return
        if isinstance(node, ast.AugAssign):
            self._scan_expr(node.value)
            if isinstance(node.op, (ast.Add, ast.Sub)):
                target_term = self._target_term(node.target)
                value_term = self.term_of(node.value)
                if target_term is not None and value_term is not None:
                    self.checks.append(
                        CheckSite(
                            op="+=" if isinstance(node.op, ast.Add) else "-=",
                            lineno=node.lineno,
                            col=node.col_offset + 1,
                            left=target_term,
                            right=value_term,
                        )
                    )
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._scan_expr(node.iter)
            for name in _target_names(node.target):
                self.env.pop(name, None)
            for child in node.body + node.orelse:
                self._statement(child)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self._scan_expr(item.context_expr)
                if isinstance(item.optional_vars, ast.Name):
                    self._bind(item.optional_vars.id, item.context_expr)
            for child in node.body:
                self._statement(child)
            return
        if isinstance(node, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            for child in node.body:
                self._statement(child)
            for handler in node.handlers:
                if handler.name is not None:
                    self.env.pop(handler.name, None)
                for child in handler.body:
                    self._statement(child)
            for child in node.orelse + node.finalbody:
                self._statement(child)
            return
        if isinstance(node, ast.If):
            self._scan_expr(node.test)
            for child in node.body + node.orelse:
                self._statement(child)
            return
        if isinstance(node, ast.While):
            self._scan_expr(node.test)
            for child in node.body + node.orelse:
                self._statement(child)
            return
        if isinstance(node, ast.Match):
            self._scan_expr(node.subject)
            for case in node.cases:
                if case.guard is not None:
                    self._scan_expr(case.guard)
                for child in case.body:
                    self._statement(child)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
            return
        # Expr / Assert / Raise / Global / Pass / Import ...
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._scan_expr(child)
            elif isinstance(child, ast.stmt):
                self._statement(child)

    def _bind(self, name: str, value: ast.expr) -> None:
        term = self.term_of(value)
        # A unit-suffixed name is a naming contract: binding it a bare
        # literal (``footprint_bytes = 4096``) or an unknown keeps the
        # suffix's dimension, exactly as the expression-local rules
        # read the name.  A value with its own evidence wins — that
        # flow is what the interprocedural rules are for.
        suffix = unit_of_name(name)
        if suffix is not None and (
            term is None
            or (term.kind == "known" and term.unit == SCALAR)
        ):
            term = _known(suffix)
        if term is not None:
            self.env[name] = term
        else:
            self.env.pop(name, None)
        if isinstance(value, ast.Call):
            canonical = self.bindings.resolve(value.func) or _dotted(
                value.func
            )
            if canonical is not None:
                self.ctor_locals[name] = canonical
                return
        self.ctor_locals.pop(name, None)

    def _target_term(self, target: ast.expr) -> Optional[UnitTerm]:
        """Term of an augmented-store target (name or attribute)."""
        if isinstance(target, ast.Name):
            bound = self.env.get(target.id)
            if bound is not None:
                return bound
            unit = unit_of_name(target.id)
            return _known(unit) if unit is not None else None
        if isinstance(target, ast.Attribute):
            unit = unit_of_name(target.attr)
            return _known(unit) if unit is not None else None
        return None

    def _assign_target(
        self, target: ast.expr, value: ast.expr, lineno: int
    ) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, value)
            return
        if isinstance(target, ast.Attribute):
            owner: Optional[str] = None
            if isinstance(target.value, ast.Name):
                if target.value.id in ("self", "cls"):
                    owner = self.class_name
                else:
                    owner = self.ctor_locals.get(target.value.id)
            if owner is not None:
                self.attr_writes.append(
                    AttrWrite(
                        class_name=owner,
                        attr=target.attr,
                        lineno=lineno,
                        term=self.term_of(value),
                    )
                )
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            values: Sequence[Optional[ast.expr]]
            if isinstance(value, (ast.Tuple, ast.List)) and len(
                value.elts
            ) == len(target.elts):
                values = value.elts
            else:
                values = [None] * len(target.elts)
            for element, element_value in zip(target.elts, values):
                if isinstance(element, ast.Name):
                    if element_value is not None:
                        self._bind(element.id, element_value)
                    else:
                        self.env.pop(element.id, None)
                elif element_value is not None:
                    self._assign_target(element, element_value, lineno)

    # -- expressions ---------------------------------------------------

    def _scan_expr(self, node: ast.expr) -> None:
        """Walk an expression for calls, checks, and emit dicts.

        ``term_of`` on a BinOp already records its additive check
        sites and its calls, so the walk dispatches each *outermost*
        interesting node once and lets term construction recurse.
        """
        for expr in ast.walk(node):
            if isinstance(expr, ast.Compare):
                operands = [expr.left] + list(expr.comparators)
                for op, first, second in zip(
                    expr.ops, operands, operands[1:]
                ):
                    surface = _COMPARE_OPS.get(type(op))
                    if surface is None:
                        continue
                    self._note_check(
                        surface,
                        expr,
                        self.term_of(first),
                        self.term_of(second),
                    )
            elif isinstance(expr, ast.BinOp) and isinstance(
                expr.op, (ast.Add, ast.Sub)
            ):
                # Only top-level additions not already visited through
                # a parent term — term_of below is cheap and records
                # the check exactly once per site thanks to the walk
                # visiting every BinOp node.
                continue
            elif isinstance(expr, ast.Dict):
                self._emit_dict(expr)
        # One term pass over the outermost expression records each
        # additive check and each call exactly once.
        self.term_of(node)

    def _emit_dict(self, node: ast.Dict) -> None:
        event = None
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "event"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                event = value.value
                break
        if event is None:
            return
        for key, value in zip(node.keys, node.values):
            if not (
                isinstance(key, ast.Constant) and isinstance(key.value, str)
            ):
                continue
            unit = unit_of_name(key.value)
            if unit is None or key.value == "event":
                continue
            self.emit_fields.append(
                EmitField(
                    event=event,
                    fieldname=key.value,
                    lineno=value.lineno,
                    term=self.term_of(value),
                )
            )


def _target_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    return []


def _is_type_checking_test(node: ast.expr) -> bool:
    return (isinstance(node, ast.Name) and node.id == "TYPE_CHECKING") or (
        isinstance(node, ast.Attribute) and node.attr == "TYPE_CHECKING"
    )


def _class_attrs(tree: ast.Module, bindings) -> List[ClassAttr]:
    """Class-body attribute declarations of every top-level class."""
    from repro.lint.dimflow import extract as _self  # for evaluator reuse

    del _self
    out: List[ClassAttr] = []
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        probe = _module_probe(bindings)
        for statement in node.body:
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            lineno = statement.lineno
            if isinstance(statement, ast.AnnAssign):
                target, value = statement.target, statement.value
            elif isinstance(statement, ast.Assign) and len(
                statement.targets
            ) == 1:
                target, value = statement.targets[0], statement.value
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name.startswith("__") and name.endswith("__"):
                if name == "__slots__" and isinstance(
                    value, (ast.Tuple, ast.List, ast.Set)
                ):
                    for element in value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            out.append(
                                ClassAttr(
                                    class_name=node.name,
                                    attr=element.value,
                                    lineno=lineno,
                                    term=None,
                                )
                            )
                continue
            term = probe.term_of(value) if value is not None else None
            out.append(
                ClassAttr(
                    class_name=node.name,
                    attr=name,
                    lineno=lineno,
                    term=term,
                )
            )
    return out


def _module_probe(bindings) -> "_UnitAnalyzer":
    """A throwaway analyzer with an empty scope, for module/class-level
    expressions (constants and imported unit names resolve; locals
    don't exist)."""
    shell = ast.parse("def _probe(): pass").body[0]
    return _UnitAnalyzer(shell, "<class-body>", None, bindings)


def extract_units(tree: ast.Module, bindings) -> ModuleUnits:
    """Local unit facts of every function (and class body) in one file.

    ``bindings`` is the file's fully-populated import map (the
    ``_Bindings`` the summary pass built).  Qualnames match the
    summary's scheme exactly, so each record joins its project-graph
    node by ``namespace::qualname``.
    """
    out: List[UnitFacts] = []
    pending: List[Tuple[ast.AST, str, Optional[str]]] = []

    def walk_body(
        body: Sequence[ast.stmt], class_stack: Tuple[str, ...]
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if class_stack:
                    qualname = ".".join(class_stack) + "." + node.name
                    class_name: Optional[str] = class_stack[-1]
                else:
                    qualname = node.name
                    class_name = None
                pending.append((node, qualname, class_name))
            elif isinstance(node, ast.ClassDef):
                walk_body(node.body, class_stack + (node.name,))
            elif isinstance(node, ast.If) and _is_type_checking_test(
                node.test
            ):
                walk_body(node.orelse, class_stack)
            elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For,
                                   ast.While)):
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, ast.stmt):
                        walk_body([child], class_stack)

    walk_body(tree.body, ())
    while pending:
        node, qualname, class_name = pending.pop(0)
        analyzer = _UnitAnalyzer(node, qualname, class_name, bindings)
        out.append(analyzer.run())
        pending.extend(analyzer.nested)
    return ModuleUnits(
        functions=tuple(out),
        class_attrs=tuple(_class_attrs(tree, bindings)),
    )
