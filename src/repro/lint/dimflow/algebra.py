"""The dimension algebra behind every unit-checking rule.

A *dimension* is a product of integer powers of base dimensions
(``seconds``, ``bytes``, ``tasks``, ...), canonically rendered as the
sorted numerator factors joined by ``*``, then ``/`` and the sorted
denominator (exponents > 1 as ``^n``)::

    "seconds"               seconds
    "bytes/seconds"         a transfer rate
    "seconds^2"             a (nonsense) squared duration
    "bytes/seconds^2"       rate change
    ""                      dimensionless (literals, ratios)

Strings are the interchange format everywhere — the metadata tables in
:mod:`repro.units`, the picklable :mod:`repro.lint.dimflow.model`
records, finding messages, the units manifest — because canonical
strings compare with ``==`` and pickle/JSON for free.  This module
owns parsing, multiplication/division, and the suffix convention, and
is a *leaf*: it imports only the standard library and the pure-data
tables of :mod:`repro.units`.

The algebra replaced an earlier per-expression inference that
collapsed every division and non-literal product to *unknown*.  Under
the algebra ``footprint_bytes / elapsed_seconds`` is the *known* rate
``bytes/seconds`` (and keeps propagating through the call graph), and
``window_seconds * gap_seconds`` is the known ``seconds^2`` — so
adding either to a plain duration is flaggable instead of invisible.

Dimensionless (``""``) is the honest unit of numeric literals and of
same-unit ratios; it is *compatible with everything* in additive and
comparison checks (``x_seconds + 1`` stays fine), so checks only fire
between two known, non-empty, different dimensions.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.units import UNIT_CONSTANTS, UNIT_RETURNS, UNIT_SUFFIXES

__all__ = [
    "SCALAR",
    "UnitEvaluator",
    "div_units",
    "mul_units",
    "parse_unit",
    "pow_unit",
    "render_unit",
    "unit_of_name",
]

#: The dimensionless unit (numeric literals, same-unit ratios).
SCALAR = ""

#: Longest suffix first, so ``_bytes_per_second`` wins over ``_bytes``
#: would never arise (``second`` != ``seconds``) but ``_cache_lines``
#: must win over any overlapping shorter suffix.
_SUFFIXES = sorted(UNIT_SUFFIXES, key=len, reverse=True)


def unit_of_name(identifier: str) -> Optional[str]:
    """Unit the naming convention assigns to ``identifier``, if any."""
    for suffix in _SUFFIXES:
        if identifier == suffix or identifier.endswith("_" + suffix):
            return UNIT_SUFFIXES[suffix]
    return None


def parse_unit(unit: str) -> Dict[str, int]:
    """Canonical unit string -> {base dimension: exponent}."""
    powers: Dict[str, int] = {}
    if not unit:
        return powers
    numerator, _, denominator = unit.partition("/")
    for text, sign in ((numerator, 1), (denominator, -1)):
        if not text:
            continue
        for factor in text.split("*"):
            base, _, exponent = factor.partition("^")
            if not base or base == "1":
                continue  # the "1/..." placeholder numerator, not a base
            powers[base] = powers.get(base, 0) + sign * (
                int(exponent) if exponent else 1
            )
    return {base: power for base, power in powers.items() if power != 0}


def render_unit(powers: Dict[str, int]) -> str:
    """{base: exponent} -> canonical unit string (sorted, minimal)."""

    def side(entries: List[Tuple[str, int]]) -> str:
        return "*".join(
            base if power == 1 else f"{base}^{power}"
            for base, power in entries
        )

    num = sorted((b, p) for b, p in powers.items() if p > 0)
    den = sorted((b, -p) for b, p in powers.items() if p < 0)
    if not num and not den:
        return SCALAR
    if not den:
        return side(num)
    return f"{side(num) or '1'}/{side(den)}"


def mul_units(left: str, right: str) -> str:
    powers = parse_unit(left)
    for base, power in parse_unit(right).items():
        powers[base] = powers.get(base, 0) + power
        if powers[base] == 0:
            del powers[base]
    return render_unit(powers)


def div_units(left: str, right: str) -> str:
    powers = parse_unit(left)
    for base, power in parse_unit(right).items():
        powers[base] = powers.get(base, 0) - power
        if powers[base] == 0:
            del powers[base]
    return render_unit(powers)


def pow_unit(unit: str, exponent: int) -> str:
    return render_unit(
        {base: power * exponent for base, power in parse_unit(unit).items()}
    )


class UnitEvaluator:
    """Best-effort unit of an expression; ``None`` = unknown.

    ``resolver`` is any object with a ``resolve(node) -> Optional[str]``
    method mapping a Name/Attribute chain to its import-canonical
    dotted path (the rules' ``ImportMap`` and the summary pass's
    ``_Bindings`` both qualify).  Literals evaluate to :data:`SCALAR`
    — known-dimensionless, compatible with everything additively but a
    real (empty) dimension under ``*`` and ``/``, which is what makes
    ``1 / elapsed_seconds`` the known rate ``1/seconds``.
    """

    def __init__(self, resolver) -> None:
        self._resolver = resolver

    def unit(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)) and not isinstance(
                node.value, bool
            ):
                return SCALAR
            return None
        if isinstance(node, ast.Name):
            canonical = self._resolver.resolve(node)
            if canonical in UNIT_CONSTANTS:
                return UNIT_CONSTANTS[canonical]
            return unit_of_name(node.id)
        if isinstance(node, ast.Attribute):
            canonical = self._resolver.resolve(node)
            if canonical in UNIT_CONSTANTS:
                return UNIT_CONSTANTS[canonical]
            # ``self.window_seconds`` — convention applies to the
            # attribute name itself.
            return unit_of_name(node.attr)
        if isinstance(node, ast.Call):
            canonical = self._resolver.resolve(node.func)
            if canonical in UNIT_RETURNS:
                return UNIT_RETURNS[canonical]
            return None
        if isinstance(node, ast.UnaryOp):
            return self.unit(node.operand)
        if isinstance(node, ast.BinOp):
            return self._binop_unit(node)
        if isinstance(node, ast.IfExp):
            left = self.unit(node.body)
            right = self.unit(node.orelse)
            return left if left == right else None
        return None

    def _binop_unit(self, node: ast.BinOp) -> Optional[str]:
        left = self.unit(node.left)
        right = self.unit(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            # Mixed known units are the *finding*, handled by the rule;
            # as a value, propagate whichever side carries a dimension.
            if left == SCALAR:
                return right
            if right == SCALAR:
                return left
            return left or right
        if isinstance(node.op, ast.Mult):
            if left is None or right is None:
                return None
            return mul_units(left, right)
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            if left is None or right is None:
                return None
            return div_units(left, right)
        if isinstance(node.op, ast.Mod):
            # ``x % y`` keeps x's dimension (remainder of a quantity).
            return left
        if isinstance(node.op, ast.Pow):
            if (
                left is not None
                and isinstance(node.right, ast.Constant)
                and isinstance(node.right.value, int)
            ):
                return pow_unit(left, node.right.value)
            return None
        return None
