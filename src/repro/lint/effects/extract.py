"""Per-function local effect extraction (the ``--jobs``-parallel half).

One linear, flow-sensitive walk per function body, tracking:

* an **alias map** from local names to ``(param, field, via)`` — ``t =
  task`` makes ``t`` the same object as ``task``; ``q = task.queue``
  tracks one level of field sensitivity; anything deeper (or any
  reassignment to a non-alias) honestly drops the binding, so a
  rebound name can never be mistaken for the caller's object;
* **mutations** through those aliases: attribute / subscript /
  augmented stores, ``del``, and the known in-place container methods
  (``append``, ``update``, ...).  ``x += 1`` on a *bare name* rebinds
  rather than mutates for immutables, so it only drops the alias — a
  documented blind spot for ``w += [x]`` on lists;
* **captures**: storing a parameter object itself (a bare-name alias,
  never a mere attribute read like ``record.duration``) into a
  ``self`` attribute, a declared ``global``, or a nested function's
  closure;
* **capture-then-mutate** flows: any local stored into a ``self``
  attribute is remembered from that line on, and later in-place
  mutations of it (through aliases) are recorded with the capture
  point — the flow-sensitive half of the mutation-after-freeze rules;
* **raise sites** with the exception-type names every enclosing
  ``try`` would catch there (so the fixpoint can tell an escaping
  raise from a converted one), and **calls** annotated with which
  arguments alias which parameters, for interprocedural propagation.

Everything recorded is a plain picklable record from
:mod:`repro.lint.effects.model`; resolution against other files
happens later, in :mod:`repro.lint.effects.fixpoint`.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.effects.model import (
    TOP,
    CaptureMutation,
    EffectCall,
    FunctionEffects,
    ParamCapture,
    ParamMutation,
    RaiseSite,
)

__all__ = ["MUTATING_METHODS", "extract_effects"]

#: Method names that mutate their receiver in place (containers and
#: the common deque/set/dict surface).  Calling one through an alias
#: of a parameter is a provable mutation of the caller's object.
MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "rotate",
        "setdefault",
        "sort",
        "update",
        "__setitem__",
        "__delitem__",
    }
)

#: Sentinel caught-name for a bare ``except:`` (catches everything).
CATCH_ALL = "<any>"

#: Builtin annotations whose instances are immutable: a parameter so
#: annotated can be *stored* without retaining mutable state.
_IMMUTABLE_ANNOTATIONS = frozenset(
    {"int", "float", "str", "bool", "bytes", "complex", "frozenset"}
)


def _is_immutable_annotation(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id in _IMMUTABLE_ANNOTATIONS
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        return annotation.value in _IMMUTABLE_ANNOTATIONS
    return False

_Alias = Tuple[str, str, Tuple[str, ...]]  # (param, field, via chain)


class _FunctionAnalyzer:
    """One flow-sensitive pass over one function body."""

    def __init__(
        self,
        node: ast.AST,
        qualname: str,
        class_name: Optional[str],
        bindings,  # repro.lint.graph.summary._Bindings
    ) -> None:
        self.node = node
        self.qualname = qualname
        self.class_name = class_name
        self.bindings = bindings
        args = node.args  # type: ignore[attr-defined]
        self.params = tuple(
            a.arg for a in list(args.posonlyargs) + list(args.args)
        )
        self.kwonly = tuple(a.arg for a in args.kwonlyargs)
        self.immutable_params = tuple(
            a.arg
            for a in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
            if _is_immutable_annotation(a.annotation)
        )
        param_names = set(self.params) | set(self.kwonly)
        #: local name -> (param, field, via): which caller object the
        #: name denotes right now.  Params start aliased to themselves.
        self.alias: Dict[str, _Alias] = {
            name: (name, "", (name,)) for name in param_names
        }
        #: local name -> (self attr, capture line, via): locals whose
        #: object has been stored into a self attribute.
        self.captured: Dict[str, Tuple[str, int, Tuple[str, ...]]] = {}
        #: local name -> constructor canonical (mirrors the summary's
        #: ctor_locals, for method-receiver resolution).
        self.ctor_locals: Dict[str, str] = {}
        self.globals_declared: Set[str] = set()
        self.mutations: List[ParamMutation] = []
        self.captures: List[ParamCapture] = []
        self.raises: List[RaiseSite] = []
        self.calls: List[EffectCall] = []
        self.capture_mutations: List[CaptureMutation] = []
        #: nested defs / classes to analyze as their own functions.
        self.nested: List[Tuple[ast.AST, str, Optional[str]]] = []

    # -- entry ---------------------------------------------------------

    def run(self) -> FunctionEffects:
        for statement in self.node.body:  # type: ignore[attr-defined]
            self._statement(statement, caught=(), handler=None)
        return FunctionEffects(
            qualname=self.qualname,
            lineno=self.node.lineno,  # type: ignore[attr-defined]
            class_name=self.class_name,
            params=self.params,
            kwonly=self.kwonly,
            immutable_params=self.immutable_params,
            mutations=tuple(self.mutations),
            captures=tuple(self.captures),
            raises=tuple(self.raises),
            calls=tuple(self.calls),
            capture_mutations=tuple(self.capture_mutations),
        )

    # -- alias machinery -----------------------------------------------

    def _alias_of(self, expr: ast.expr) -> Optional[_Alias]:
        """The ``(param, field, via)`` an expression denotes, if any."""
        if isinstance(expr, ast.Name):
            return self.alias.get(expr.id)
        if isinstance(expr, ast.Attribute) and isinstance(
            expr.value, ast.Name
        ):
            base = self.alias.get(expr.value.id)
            if base is not None and base[1] == "":
                param, _, via = base
                step = via[:-1] + (f"{via[-1]}.{expr.attr}",)
                return (param, expr.attr, step)
        return None

    def _drop(self, name: str) -> None:
        self.alias.pop(name, None)
        self.captured.pop(name, None)
        self.ctor_locals.pop(name, None)

    def _bind(self, name: str, value: ast.expr, lineno: int) -> None:
        """Process ``name = value`` for alias / capture bookkeeping."""
        if name in self.globals_declared:
            source = self._alias_of(value)
            if source is not None and source[1] == "":
                self.captures.append(
                    ParamCapture(
                        param=source[0],
                        lineno=lineno,
                        via=source[2] + (name,),
                        dest=f"global {name}",
                    )
                )
            return  # a global target never becomes a local alias
        source = self._alias_of(value)
        if source is not None:
            param, fieldname, via = source
            self.alias[name] = (param, fieldname, via + (name,))
        else:
            self.alias.pop(name, None)
        if isinstance(value, ast.Name) and value.id in self.captured:
            attr, cap_line, via = self.captured[value.id]
            self.captured[name] = (attr, cap_line, via + (name,))
        else:
            self.captured.pop(name, None)
        if isinstance(value, ast.Call):
            canonical = self.bindings.resolve(value.func) or _dotted(
                value.func
            )
            if canonical is not None:
                self.ctor_locals[name] = canonical
                return
        self.ctor_locals.pop(name, None)

    # -- store targets -------------------------------------------------

    def _store(self, target: ast.expr, kind: str, lineno: int) -> None:
        """Record a mutation implied by storing into ``target``."""
        if isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name):
                entry = self.alias.get(base.id)
                if entry is not None:
                    param, fieldname, via = entry
                    if fieldname == "":
                        self.mutations.append(
                            ParamMutation(
                                param=param,
                                field=target.attr,
                                lineno=lineno,
                                via=via,
                                kind=kind,
                            )
                        )
                    else:
                        self.mutations.append(
                            ParamMutation(
                                param=param,
                                field=fieldname,
                                lineno=lineno,
                                via=via,
                                kind="store-attr-deep",
                            )
                        )
                return
            deep = self._alias_of(base)
            if deep is not None:
                self.mutations.append(
                    ParamMutation(
                        param=deep[0],
                        field=deep[1],
                        lineno=lineno,
                        via=deep[2],
                        kind="store-attr-deep",
                    )
                )
            return
        if isinstance(target, ast.Subscript):
            entry = self._alias_of(target.value)
            if entry is not None:
                self.mutations.append(
                    ParamMutation(
                        param=entry[0],
                        field=entry[1],
                        lineno=lineno,
                        via=entry[2],
                        kind="store-index" if kind != "delete" else "delete",
                    )
                )
            if isinstance(target.value, ast.Name):
                self._note_captured_mutation(
                    target.value.id, lineno, "store-index"
                )
            return

    def _note_captured_mutation(
        self, name: str, lineno: int, kind: str
    ) -> None:
        entry = self.captured.get(name)
        if entry is not None:
            attr, cap_line, via = entry
            self.capture_mutations.append(
                CaptureMutation(
                    attr=attr,
                    capture_lineno=cap_line,
                    lineno=lineno,
                    name=name,
                    via=via,
                    kind=kind,
                )
            )

    def _self_attr_store(
        self, target: ast.Attribute, value: Optional[ast.expr], lineno: int
    ) -> None:
        """``self.<attr> = value``: record captures of params/locals."""
        if value is None:
            return
        attr = target.attr
        if isinstance(value, ast.Name):
            entry = self.alias.get(value.id)
            if entry is not None and entry[1] == "" and entry[0] not in (
                "self",
                "cls",
            ):
                self.captures.append(
                    ParamCapture(
                        param=entry[0],
                        lineno=lineno,
                        via=entry[2],
                        dest=f"self.{attr}",
                    )
                )
            # Any bare local stored on self starts capture tracking —
            # mutating it later edits the stored object in place.
            self.captured.setdefault(
                value.id, (attr, lineno, (value.id,))
            )
        elif isinstance(value, ast.Lambda):
            free = _free_names(value)
            for name in sorted(free):
                entry = self.alias.get(name)
                if entry is not None and entry[1] == "" and entry[0] not in (
                    "self",
                    "cls",
                ):
                    self.captures.append(
                        ParamCapture(
                            param=entry[0],
                            lineno=lineno,
                            via=entry[2],
                            dest=f"self.{attr}",
                        )
                    )

    # -- statements ----------------------------------------------------

    def _statement(
        self,
        node: ast.stmt,
        caught: Tuple[str, ...],
        handler: Optional[Tuple[str, ...]],
        handler_vars: Optional[Dict[str, Tuple[str, ...]]] = None,
    ) -> None:
        handler_vars = handler_vars or {}
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._nested_function(node)
            return
        if isinstance(node, ast.ClassDef):
            self._nested_class(node)
            return
        if isinstance(node, ast.Global):
            self.globals_declared.update(node.names)
            return
        if isinstance(node, ast.Assign):
            self._scan_expr(node.value, caught)
            for target in node.targets:
                self._assign_target(target, node.value, node.lineno)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._scan_expr(node.value, caught)
                self._assign_target(node.target, node.value, node.lineno)
            elif isinstance(node.target, ast.Name):
                self._drop(node.target.id)
            return
        if isinstance(node, ast.AugAssign):
            self._scan_expr(node.value, caught)
            if isinstance(node.target, ast.Name):
                # ``x += v`` rebinds for immutables; honesty drops the
                # alias rather than guessing an in-place mutation.
                self._drop(node.target.id)
            else:
                self._store(node.target, "augstore", node.lineno)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._drop(target.id)
                else:
                    self._store(target, "delete", node.lineno)
            return
        if isinstance(node, ast.Raise):
            self._raise(node, caught, handler, handler_vars)
            return
        if isinstance(node, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            self._try(node, caught, handler, handler_vars)
            return
        if isinstance(node, ast.If):
            self._scan_expr(node.test, caught)
            for child in node.body + node.orelse:
                self._statement(child, caught, handler, handler_vars)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._scan_expr(node.iter, caught)
            for name in _target_names(node.target):
                self._drop(name)
            for child in node.body + node.orelse:
                self._statement(child, caught, handler, handler_vars)
            return
        if isinstance(node, ast.While):
            self._scan_expr(node.test, caught)
            for child in node.body + node.orelse:
                self._statement(child, caught, handler, handler_vars)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self._scan_expr(item.context_expr, caught)
                if isinstance(item.optional_vars, ast.Name):
                    self._bind(
                        item.optional_vars.id,
                        item.context_expr,
                        node.lineno,
                    )
            for child in node.body:
                self._statement(child, caught, handler, handler_vars)
            return
        if isinstance(node, ast.Match):
            self._scan_expr(node.subject, caught)
            for case in node.cases:
                if case.guard is not None:
                    self._scan_expr(case.guard, caught)
                for child in case.body:
                    self._statement(child, caught, handler, handler_vars)
            return
        # Return / Expr / Assert / Import / Pass / Break / Continue ...
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._scan_expr(child, caught)

    def _assign_target(
        self, target: ast.expr, value: ast.expr, lineno: int
    ) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, value, lineno)
            return
        if isinstance(target, ast.Attribute):
            self._store(target, "store-attr", lineno)
            if (
                isinstance(target.value, ast.Name)
                and target.value.id in ("self", "cls")
            ):
                self._self_attr_store(target, value, lineno)
            return
        if isinstance(target, ast.Subscript):
            self._store(target, "store-index", lineno)
            base = target.value
            # ``self.attr[k] = param`` retains the object in a
            # self-owned container: a capture.
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id in ("self", "cls")
                and isinstance(value, ast.Name)
            ):
                entry = self.alias.get(value.id)
                if entry is not None and entry[1] == "" and entry[0] not in (
                    "self",
                    "cls",
                ):
                    self.captures.append(
                        ParamCapture(
                            param=entry[0],
                            lineno=lineno,
                            via=entry[2],
                            dest=f"self.{base.attr}[...]",
                        )
                    )
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            values: Sequence[Optional[ast.expr]]
            if isinstance(value, (ast.Tuple, ast.List)) and len(
                value.elts
            ) == len(target.elts):
                values = value.elts
            else:
                values = [None] * len(target.elts)
            for element, element_value in zip(target.elts, values):
                if isinstance(element, ast.Name):
                    if element_value is not None:
                        self._bind(element.id, element_value, lineno)
                    else:
                        self._drop(element.id)
                else:
                    self._assign_target(
                        element,
                        element_value
                        if element_value is not None
                        else ast.Constant(value=None),
                        lineno,
                    )

    # -- nested scopes -------------------------------------------------

    def _nested_function(self, node: ast.AST) -> None:
        shadowed = {
            a.arg
            for a in (
                list(node.args.posonlyargs)  # type: ignore[attr-defined]
                + list(node.args.args)  # type: ignore[attr-defined]
                + list(node.args.kwonlyargs)  # type: ignore[attr-defined]
            )
        }
        for name in sorted(_free_names(node) - shadowed):
            entry = self.alias.get(name)
            if entry is not None and entry[1] == "" and entry[0] not in (
                "self",
                "cls",
            ):
                self.captures.append(
                    ParamCapture(
                        param=entry[0],
                        lineno=node.lineno,  # type: ignore[attr-defined]
                        via=entry[2],
                        dest=f"closure {node.name}",  # type: ignore[attr-defined]
                    )
                )
        name = node.name  # type: ignore[attr-defined]
        self._drop(name)
        self.nested.append(
            (node, f"{self.qualname}.{name}", self.class_name)
        )

    def _nested_class(self, node: ast.ClassDef) -> None:
        # Methods of a function-local class get the enclosing
        # function's qualname as prefix (mirroring the summary pass).
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.nested.append(
                    (child, f"{self.qualname}.{child.name}", node.name)
                )

    # -- raises and try context ----------------------------------------

    def _handler_types(self, handler: ast.ExceptHandler) -> Tuple[str, ...]:
        if handler.type is None:
            return (CATCH_ALL,)
        nodes = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        names = []
        for type_node in nodes:
            resolved = self.bindings.resolve(type_node) or _dotted(type_node)
            names.append(resolved if resolved is not None else TOP)
        return tuple(names)

    def _try(
        self,
        node: ast.Try,
        caught: Tuple[str, ...],
        handler: Optional[Tuple[str, ...]],
        handler_vars: Dict[str, Tuple[str, ...]],
    ) -> None:
        body_caught = caught
        for except_handler in node.handlers:
            body_caught = body_caught + self._handler_types(except_handler)
        for child in node.body:
            self._statement(child, body_caught, handler, handler_vars)
        for except_handler in node.handlers:
            types = self._handler_types(except_handler)
            local_vars = dict(handler_vars)
            if except_handler.name is not None:
                local_vars[except_handler.name] = types
                self._drop(except_handler.name)
            for child in except_handler.body:
                self._statement(child, caught, types, local_vars)
        # orelse/finally run outside the protection of the handlers.
        for child in node.orelse + node.finalbody:
            self._statement(child, caught, handler, handler_vars)

    def _raise(
        self,
        node: ast.Raise,
        caught: Tuple[str, ...],
        handler: Optional[Tuple[str, ...]],
        handler_vars: Dict[str, Tuple[str, ...]],
    ) -> None:
        if node.exc is None:
            # Bare re-raise: propagates whatever the handler caught.
            for type_name in handler if handler is not None else (TOP,):
                self.raises.append(
                    RaiseSite(
                        type=type_name,
                        lineno=node.lineno,
                        caught=caught,
                        kind="reraise",
                    )
                )
            return
        self._scan_expr(node.exc, caught)
        if node.cause is not None:
            self._scan_expr(node.cause, caught)
        exc = node.exc
        if isinstance(exc, ast.Call):
            type_name = self.bindings.resolve(exc.func) or _dotted(exc.func)
        elif isinstance(exc, ast.Name) and exc.id in handler_vars:
            for caught_type in handler_vars[exc.id]:
                self.raises.append(
                    RaiseSite(
                        type=caught_type,
                        lineno=node.lineno,
                        caught=caught,
                        kind="reraise",
                    )
                )
            return
        else:
            type_name = self.bindings.resolve(exc) or _dotted(exc)
            # A bare name that is a local (alias/ctor result) is an
            # *instance*, not a class — unresolvable.
            if isinstance(exc, ast.Name) and (
                exc.id in self.alias or exc.id in self.ctor_locals
            ):
                type_name = None
        self.raises.append(
            RaiseSite(
                type=type_name if type_name is not None else TOP,
                lineno=node.lineno,
                caught=caught,
            )
        )

    # -- expressions ---------------------------------------------------

    def _scan_expr(self, node: ast.expr, caught: Tuple[str, ...]) -> None:
        for expr in ast.walk(node):
            if isinstance(expr, ast.Call):
                self._call(expr, caught)

    def _call(self, node: ast.Call, caught: Tuple[str, ...]) -> None:
        func = node.func
        receiver: Optional[Tuple[str, str]] = None
        receiver_class: Optional[str] = None
        if isinstance(func, ast.Attribute):
            base = func.value
            if func.attr in MUTATING_METHODS:
                entry = self._alias_of(base)
                if entry is not None:
                    self.mutations.append(
                        ParamMutation(
                            param=entry[0],
                            field=entry[1],
                            lineno=node.lineno,
                            via=entry[2],
                            kind=f"call:{func.attr}",
                        )
                    )
                if isinstance(base, ast.Name):
                    self._note_captured_mutation(
                        base.id, node.lineno, f"call:{func.attr}"
                    )
            if isinstance(base, ast.Name):
                entry = self.alias.get(base.id)
                if entry is not None:
                    receiver = (entry[0], entry[1])
                receiver_class = self.ctor_locals.get(base.id)
            # ``self.<attr>.append(param)``: retained in a self-owned
            # container — a capture of the argument.
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id in ("self", "cls")
                and func.attr in ("append", "add", "appendleft", "insert")
            ):
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        entry = self.alias.get(arg.id)
                        if entry is not None and entry[1] == "" and entry[
                            0
                        ] not in ("self", "cls"):
                            self.captures.append(
                                ParamCapture(
                                    param=entry[0],
                                    lineno=node.lineno,
                                    via=entry[2],
                                    dest=f"self.{base.attr}[...]",
                                )
                            )
        args = tuple(
            (
                (entry[0], entry[1])
                if (entry := self._alias_of(arg)) is not None
                else None
            )
            for arg in node.args
        )
        kwargs = tuple(
            (
                keyword.arg,
                (
                    (entry[0], entry[1])
                    if (entry := self._alias_of(keyword.value)) is not None
                    else None
                ),
            )
            for keyword in node.keywords
            if keyword.arg is not None
        )
        self.calls.append(
            EffectCall(
                dotted=_dotted(func),
                canonical=self.bindings.resolve(func),
                receiver_class=receiver_class,
                lineno=node.lineno,
                caught=caught,
                args=args,
                kwargs=kwargs,
                receiver=receiver,
            )
        )


def _dotted(node: ast.AST) -> Optional[str]:
    chain: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        chain.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    chain.append(current.id)
    return ".".join(reversed(chain))


def _free_names(node: ast.AST) -> Set[str]:
    """Names loaded anywhere inside ``node`` (closure candidates)."""
    return {
        n.id
        for n in ast.walk(node)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


def _target_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    return []


def _is_type_checking_test(node: ast.expr) -> bool:
    return (isinstance(node, ast.Name) and node.id == "TYPE_CHECKING") or (
        isinstance(node, ast.Attribute) and node.attr == "TYPE_CHECKING"
    )


def extract_effects(tree: ast.Module, bindings) -> Tuple[FunctionEffects, ...]:
    """Local effects of every function in one parsed file.

    ``bindings`` is the file's fully-populated import map (the
    ``_Bindings`` the summary pass built), used to canonicalize
    exception types and call targets.  Qualnames match the summary's
    scheme exactly, so each record joins its
    :class:`~repro.lint.graph.summary.FunctionSummary` (and project
    graph node) by ``namespace::qualname``.
    """
    out: List[FunctionEffects] = []
    pending: List[Tuple[ast.AST, str, Optional[str]]] = []

    def walk_body(
        body: Sequence[ast.stmt], class_stack: Tuple[str, ...]
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if class_stack:
                    qualname = ".".join(class_stack) + "." + node.name
                    class_name: Optional[str] = class_stack[-1]
                else:
                    qualname = node.name
                    class_name = None
                pending.append((node, qualname, class_name))
            elif isinstance(node, ast.ClassDef):
                walk_body(node.body, class_stack + (node.name,))
            elif isinstance(node, ast.If) and _is_type_checking_test(
                node.test
            ):
                walk_body(node.orelse, class_stack)
            elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For,
                                   ast.While)):
                # Conditionally-defined module functions still exist
                # at runtime; give them effects under the same names.
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, ast.stmt):
                        walk_body([child], class_stack)

    walk_body(tree.body, ())
    while pending:
        node, qualname, class_name = pending.pop(0)
        analyzer = _FunctionAnalyzer(node, qualname, class_name, bindings)
        out.append(analyzer.run())
        pending.extend(analyzer.nested)
    return out
