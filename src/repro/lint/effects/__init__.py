"""Effect-signature dataflow analysis for ``repro lint``.

The call graph (PR 5) answers *who calls whom*; this package answers
*what a call does to its arguments*.  Each function is condensed — in
the same ``--jobs``-parallel per-file pass that extracts its
:class:`~repro.lint.graph.summary.ModuleSummary` — into a picklable
:class:`~repro.lint.effects.model.FunctionEffects` record of its
*local* effects: which parameters it mutates (attribute / subscript /
augmented stores and known mutating method calls, traced through local
aliases with one level of field sensitivity), which parameter objects
it captures into ``self`` / closures / globals, which exception types
it raises (with the enclosing ``try`` context of every site), and the
calls through which effects can propagate.

The single-process whole-program phase then runs
:class:`~repro.lint.effects.fixpoint.EffectAnalysis`: a fixpoint over
the strongly-connected components of the call graph that folds callee
effects into caller :class:`~repro.lint.effects.model.EffectSignature`
records.  Unknown callees degrade honestly to ``⊤`` (recorded as the
``*_top`` flags, never as concrete facts), so every concrete entry in
a signature is *provable* — the rules built on top report only those,
under-approximating exactly the way the call graph itself does.
"""

from repro.lint.effects.model import (
    TOP,
    EffectSignature,
    FunctionEffects,
    ParamCapture,
    ParamMutation,
    RaiseSite,
)

__all__ = [
    "TOP",
    "EffectSignature",
    "FunctionEffects",
    "ParamCapture",
    "ParamMutation",
    "RaiseSite",
]
