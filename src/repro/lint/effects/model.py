"""Picklable data model of the effect analysis.

Like :mod:`repro.lint.graph.summary`, this module is a *leaf*: plain
frozen dataclasses of strings and tuples, importing only the standard
library, so extraction can run inside ``--jobs`` worker processes and
ship its results across the pool boundary unchanged.

Two layers of record:

* :class:`FunctionEffects` — the *local* (intraprocedural) effects of
  one function body, extracted per file by
  :mod:`repro.lint.effects.extract` and stored on the file's
  :class:`~repro.lint.graph.summary.ModuleSummary`;
* :class:`EffectSignature` — the *transitive* summary after the SCC
  fixpoint of :class:`~repro.lint.effects.fixpoint.EffectAnalysis`
  folded callee effects into callers.

``via`` chains record how a mutated or captured object was reached
from the originating parameter (``("task", "t")`` for ``t = task``),
so findings can print the offending alias chain verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

__all__ = [
    "TOP",
    "EffectCall",
    "EffectSignature",
    "FunctionEffects",
    "CaptureMutation",
    "ParamCapture",
    "ParamMutation",
    "RaiseSite",
]

#: The honest "don't know" value: an unresolvable exception type or an
#: unknown callee's effects.  Signatures record ``⊤`` as a flag, never
#: as a concrete fact, so rules cannot mistake ignorance for evidence.
TOP = "⊤"


@dataclass(frozen=True)
class ParamMutation:
    """One provable mutation of a parameter (or receiver) object.

    ``field`` is the first-level attribute whose object is mutated
    (``""`` means the parameter object itself); ``kind`` is
    ``"store-attr"`` / ``"store-index"`` / ``"augstore"`` /
    ``"delete"`` / ``"store-attr-deep"`` / ``"call:<method>"``.
    """

    param: str
    field: str
    lineno: int
    via: Tuple[str, ...]
    kind: str

    def chain(self) -> str:
        return " -> ".join(self.via)


@dataclass(frozen=True)
class ParamCapture:
    """A parameter object retained beyond the call.

    ``dest`` is ``"self.<attr>"``, ``"global <name>"``, or
    ``"closure <funcname>"``.
    """

    param: str
    lineno: int
    via: Tuple[str, ...]
    dest: str

    def chain(self) -> str:
        return " -> ".join(self.via)


@dataclass(frozen=True)
class RaiseSite:
    """One ``raise`` statement, with its enclosing ``try`` context.

    ``type`` is the import-canonical (or literal dotted) name of the
    raised class, or :data:`TOP` when unresolvable.  ``caught`` lists
    the exception-type names every enclosing ``try`` in this function
    would catch at this site (``"<any>"`` for a bare ``except``).
    ``kind`` is ``"explicit"`` for ``raise X(...)`` and ``"reraise"``
    for a bare ``raise`` inside a handler (the type then names what
    the handler caught).
    """

    type: str
    lineno: int
    caught: Tuple[str, ...] = ()
    kind: str = "explicit"


@dataclass(frozen=True)
class CaptureMutation:
    """A local captured into ``self.<attr>`` and mutated *afterwards*.

    The flow-sensitive core of the mutation-after-freeze rules: once
    ``self._sig_x = work`` runs, ``work`` and the stored reference are
    one object, so any later ``work.append(...)`` edits state a memo
    key already hashed.  ``name`` is the mutated local, ``via`` the
    alias chain from the captured name to it.
    """

    attr: str
    capture_lineno: int
    lineno: int
    name: str
    via: Tuple[str, ...]
    kind: str

    def chain(self) -> str:
        return " -> ".join(self.via)


@dataclass(frozen=True)
class EffectCall:
    """One call, annotated for interprocedural effect propagation.

    ``dotted``/``canonical``/``receiver_class`` mirror
    :class:`~repro.lint.graph.summary.CallRef` so the project graph
    can resolve the callee.  ``args``/``kwargs`` map each argument
    that is an alias of a caller parameter to ``(param, field)``;
    ``receiver`` does the same for the method receiver.  ``caught``
    is the enclosing-``try`` context, exactly as on
    :class:`RaiseSite`.
    """

    dotted: Optional[str]
    canonical: Optional[str]
    receiver_class: Optional[str]
    lineno: int
    caught: Tuple[str, ...] = ()
    args: Tuple[Optional[Tuple[str, str]], ...] = ()
    kwargs: Tuple[Tuple[str, Optional[Tuple[str, str]]], ...] = ()
    receiver: Optional[Tuple[str, str]] = None


@dataclass(frozen=True)
class FunctionEffects:
    """Local (intraprocedural) effects of one function body."""

    qualname: str
    lineno: int
    class_name: Optional[str]
    #: Positional parameter names, in order (``self`` included).
    params: Tuple[str, ...]
    #: Keyword-only parameter names.
    kwonly: Tuple[str, ...] = ()
    #: Parameters annotated with an immutable builtin (``int``,
    #: ``str``, ...): capturing their *value* cannot retain mutable
    #: state, so reference-retention rules skip them.
    immutable_params: Tuple[str, ...] = ()
    mutations: Tuple[ParamMutation, ...] = ()
    captures: Tuple[ParamCapture, ...] = ()
    raises: Tuple[RaiseSite, ...] = ()
    calls: Tuple[EffectCall, ...] = ()
    capture_mutations: Tuple[CaptureMutation, ...] = ()


@dataclass(frozen=True)
class EffectSignature:
    """Transitive effect summary of one function, post fixpoint.

    Concrete sets contain only *provable* facts; the ``*_top`` flags
    record that unknown callees (or unresolvable raise types) may add
    arbitrarily more.  A signature with ``raises_top=True`` and an
    empty ``raises`` set therefore means "nothing provable, anything
    possible" — rules must treat it as silence, not as evidence.
    """

    key: str
    #: ``(param, field)`` pairs provably mutated (``field == ""`` for
    #: the parameter object itself; ``"self"`` counts as a param).
    mutates: FrozenSet[Tuple[str, str]] = frozenset()
    #: Parameters whose objects are provably retained beyond the call.
    captures: FrozenSet[str] = frozenset()
    #: Canonical exception type names that can escape this function.
    raises: FrozenSet[str] = frozenset()
    #: Module-global names written, directly or transitively.
    global_writes: FrozenSet[str] = frozenset()
    mutates_top: bool = False
    captures_top: bool = False
    raises_top: bool = False
