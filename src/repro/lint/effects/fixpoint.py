"""Interprocedural effect propagation: SCC fixpoint over the call graph.

:class:`EffectAnalysis` joins every file's local
:class:`~repro.lint.effects.model.FunctionEffects` against the
:class:`~repro.lint.graph.builder.ProjectGraph`, resolves each
recorded call with the graph's own resolver, and folds callee effects
into caller :class:`~repro.lint.effects.model.EffectSignature` records
in reverse-topological SCC order (Tarjan, iterative); mutually
recursive functions iterate to a fixpoint, which terminates because
every signature component only grows within a finite universe.

Exception propagation is filtered per call site: a callee's raise is
dropped when any enclosing ``try`` at the site provably catches it —
judged against a hierarchy that chains the project's class table (via
:meth:`~repro.lint.graph.builder.ProjectGraph.class_hierarchy`) into a
hardcoded builtin exception tree.  An unresolvable raise type becomes
``⊤``; an unresolvable *handler* type is treated as catching
everything.  Both degradations push the analysis toward silence, never
toward a false finding.

The witness queries (:meth:`EffectAnalysis.raise_witness`,
:meth:`EffectAnalysis.mutation_witness`, ...) reconstruct a
deterministic shortest call path from a root to the local site that
justifies a signature entry, so findings print the full offending
chain.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.effects.model import (
    TOP,
    EffectCall,
    EffectSignature,
    FunctionEffects,
    ParamCapture,
    ParamMutation,
)
from repro.lint.graph.summary import CallRef, ModuleSummary

__all__ = ["BUILTIN_EXCEPTION_PARENTS", "CATCH_ALL", "EffectAnalysis"]

#: Bare ``except:`` marker (mirrors the extractor's sentinel).
CATCH_ALL = "<any>"

#: Child -> parent for the builtin exception hierarchy (the chains the
#: catch filter can walk without importing anything).
BUILTIN_EXCEPTION_PARENTS: Dict[str, Optional[str]] = {
    "BaseException": None,
    "Exception": "BaseException",
    "KeyboardInterrupt": "BaseException",
    "SystemExit": "BaseException",
    "GeneratorExit": "BaseException",
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "FloatingPointError": "ArithmeticError",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "BufferError": "Exception",
    "EOFError": "Exception",
    "ImportError": "Exception",
    "ModuleNotFoundError": "ImportError",
    "LookupError": "Exception",
    "IndexError": "LookupError",
    "KeyError": "LookupError",
    "MemoryError": "Exception",
    "NameError": "Exception",
    "UnboundLocalError": "NameError",
    "OSError": "Exception",
    "IOError": "OSError",
    "BlockingIOError": "OSError",
    "ChildProcessError": "OSError",
    "ConnectionError": "OSError",
    "BrokenPipeError": "ConnectionError",
    "ConnectionAbortedError": "ConnectionError",
    "ConnectionRefusedError": "ConnectionError",
    "ConnectionResetError": "ConnectionError",
    "FileExistsError": "OSError",
    "FileNotFoundError": "OSError",
    "InterruptedError": "OSError",
    "IsADirectoryError": "OSError",
    "NotADirectoryError": "OSError",
    "PermissionError": "OSError",
    "ProcessLookupError": "OSError",
    "TimeoutError": "OSError",
    "ReferenceError": "Exception",
    "RuntimeError": "Exception",
    "NotImplementedError": "RuntimeError",
    "RecursionError": "RuntimeError",
    "StopIteration": "Exception",
    "StopAsyncIteration": "Exception",
    "SyntaxError": "Exception",
    "IndentationError": "SyntaxError",
    "TabError": "IndentationError",
    "SystemError": "Exception",
    "TypeError": "Exception",
    "ValueError": "Exception",
    "UnicodeError": "ValueError",
    "UnicodeDecodeError": "UnicodeError",
    "UnicodeEncodeError": "UnicodeError",
}

_AdjEntry = Tuple[EffectCall, Optional[str], bool]  # (call, callee, is_ctor)


def _short(name: str) -> str:
    return name.rpartition(".")[2]


class EffectAnalysis:
    """Effect signatures for every function in a linted corpus."""

    def __init__(
        self, graph, summaries: Sequence[ModuleSummary]
    ) -> None:
        self._graph = graph
        self._effects: Dict[str, FunctionEffects] = {}
        self._namespace_of: Dict[str, str] = {}
        for summary in summaries:
            namespace = summary.module or summary.path
            for fx in summary.effects:
                key = f"{namespace}::{fx.qualname}"
                if key not in self._effects:
                    self._effects[key] = fx
                    self._namespace_of[key] = namespace
        self._hierarchy = graph.class_hierarchy()
        self._canon_cache: Dict[Tuple[str, str, str], str] = {}
        self._adjacency: Dict[str, List[_AdjEntry]] = {}
        self._build_adjacency()
        self._signatures: Dict[str, EffectSignature] = {}
        self._run_fixpoint()

    # -- public queries ------------------------------------------------

    def signature(self, key: str) -> EffectSignature:
        """The signature of ``key`` — honest ``⊤`` when unanalyzed."""
        found = self._signatures.get(key)
        if found is not None:
            return found
        return EffectSignature(
            key=key, mutates_top=True, captures_top=True, raises_top=True
        )

    def function_effects(self, key: str) -> Optional[FunctionEffects]:
        return self._effects.get(key)

    def keys(self) -> List[str]:
        return sorted(self._effects)

    def is_repro_error(self, exc: str) -> bool:
        """Whether ``exc`` is (or derives from) a ``repro.errors`` type."""
        return any(
            ancestor.startswith("repro.errors.")
            for ancestor in self._ancestors(exc)
        )

    # -- witnesses -----------------------------------------------------

    def raise_witness(
        self, root: str, exc: str
    ) -> Optional[Tuple[Tuple[str, ...], str, int]]:
        """Shortest call path from ``root`` to an escaping raise of
        ``exc``: ``(path_keys, site_key, site_lineno)``."""
        visited = {root}
        queue = deque([(root, (root,))])
        while queue:
            key, path = queue.popleft()
            namespace = self._namespace_of.get(key, "")
            fx = self._effects.get(key)
            if fx is not None:
                for site in sorted(fx.raises, key=lambda s: s.lineno):
                    found = self._canon_type(namespace, site.type, TOP)
                    if found == exc and not self._is_caught(
                        found, site.caught, namespace
                    ):
                        return (path, key, site.lineno)
            for call, callee, _ in self._adjacency.get(key, ()):
                if callee is None or callee in visited:
                    continue
                csig = self._signatures.get(callee)
                if csig is None or exc not in csig.raises:
                    continue
                if self._is_caught(exc, call.caught, namespace):
                    continue
                visited.add(callee)
                queue.append((callee, path + (callee,)))
        return None

    def mutation_witness(
        self, root: str, param: str
    ) -> Optional[Tuple[Tuple[str, ...], str, ParamMutation]]:
        """Shortest call path from ``root`` (tracking ``param`` through
        argument positions) to a local mutation of it."""
        visited = {(root, param)}
        queue = deque([(root, param, (root,))])
        while queue:
            key, name, path = queue.popleft()
            fx = self._effects.get(key)
            if fx is None:
                continue
            for mutation in sorted(fx.mutations, key=lambda m: m.lineno):
                if mutation.param == name:
                    return (path, key, mutation)
            for call, callee, is_ctor in self._adjacency.get(key, ()):
                if callee is None:
                    continue
                callee_fx = self._effects.get(callee)
                if callee_fx is None:
                    continue
                mapping = self._param_mapping(call, callee_fx, is_ctor)
                for callee_param, (src_param, _) in mapping.items():
                    state = (callee, callee_param)
                    if src_param == name and state not in visited:
                        visited.add(state)
                        queue.append(
                            (callee, callee_param, path + (callee,))
                        )
        return None

    def capture_witness(
        self, root: str, param: str
    ) -> Optional[Tuple[Tuple[str, ...], str, ParamCapture]]:
        """Like :meth:`mutation_witness`, for retained references."""
        visited = {(root, param)}
        queue = deque([(root, param, (root,))])
        while queue:
            key, name, path = queue.popleft()
            fx = self._effects.get(key)
            if fx is None:
                continue
            for capture in sorted(fx.captures, key=lambda c: c.lineno):
                if capture.param == name:
                    return (path, key, capture)
            for call, callee, is_ctor in self._adjacency.get(key, ()):
                if callee is None:
                    continue
                callee_fx = self._effects.get(callee)
                if callee_fx is None:
                    continue
                mapping = self._param_mapping(call, callee_fx, is_ctor)
                for callee_param, (src_param, src_field) in mapping.items():
                    state = (callee, callee_param)
                    if (
                        src_param == name
                        and src_field == ""
                        and state not in visited
                    ):
                        visited.add(state)
                        queue.append(
                            (callee, callee_param, path + (callee,))
                        )
        return None

    def global_write_witness(
        self, root: str
    ) -> Optional[Tuple[Tuple[str, ...], str, str, int]]:
        """Shortest call path from ``root`` to a function that writes a
        module global: ``(path, site_key, global_name, lineno)``."""
        visited = {root}
        queue = deque([(root, (root,))])
        while queue:
            key, path = queue.popleft()
            writes = self._local_global_writes(key)
            if writes:
                name, lineno = min(writes, key=lambda w: (w[1], w[0]))
                return (path, key, name, lineno)
            for call, callee, _ in self._adjacency.get(key, ()):
                if callee is None or callee in visited:
                    continue
                csig = self._signatures.get(callee)
                if csig is None or not csig.global_writes:
                    continue
                visited.add(callee)
                queue.append((callee, path + (callee,)))
        return None

    def render_path(self, path: Tuple[str, ...]) -> str:
        return self._graph.render_path(path)

    def node_path(self, key: str) -> str:
        node = self._graph.node(key)
        return node.path if node is not None else ""

    # -- construction --------------------------------------------------

    def _build_adjacency(self) -> None:
        for key in sorted(self._effects):
            entries: List[_AdjEntry] = []
            for call in self._effects[key].calls:
                ref = CallRef(
                    dotted=call.dotted,
                    canonical=call.canonical,
                    receiver_class=call.receiver_class,
                    lineno=call.lineno,
                )
                target = self._graph.resolve_call(key, ref)
                if target is None:
                    entries.append((call, None, False))
                elif isinstance(target, tuple):
                    namespace, cls = target
                    resolved_any = False
                    for ctor in ("__init__", "__post_init__"):
                        ctor_key = f"{namespace}::{cls.name}.{ctor}"
                        if ctor_key in self._effects:
                            entries.append((call, ctor_key, True))
                            resolved_any = True
                    if not resolved_any:
                        # A class with no analyzable constructor is a
                        # dataclass-style default __init__: no effects.
                        continue
                else:
                    entries.append((call, target.key, False))
            self._adjacency[key] = entries

    def _local_global_writes(self, key: str) -> Tuple[Tuple[str, int], ...]:
        node = self._graph.node(key)
        if node is None:
            return ()
        return tuple(node.summary.global_writes)

    # -- type canonicalization and catching ----------------------------

    def _canon_type(self, namespace: str, name: str, default: str) -> str:
        """Canonical exception name, or ``default`` when unresolvable.

        ``default`` is :data:`~repro.lint.effects.model.TOP` for raise
        types (we don't know what escapes) and :data:`CATCH_ALL` for
        handler types (we must assume it catches everything) — both
        degrade toward silence.
        """
        if name == TOP:
            return default
        cache_key = (namespace, name, default)
        cached = self._canon_cache.get(cache_key)
        if cached is not None:
            return cached
        canonical = self._graph.resolve_type(namespace, name)
        if canonical is None:
            short = _short(name)
            if short in BUILTIN_EXCEPTION_PARENTS:
                canonical = short
            else:
                canonical = default
        self._canon_cache[cache_key] = canonical
        return canonical

    def _ancestors(self, name: str) -> List[str]:
        seen: List[str] = []
        stack = [name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.append(current)
            stack.extend(self._hierarchy.get(current, ()))
            parent = BUILTIN_EXCEPTION_PARENTS.get(_short(current))
            if parent is not None:
                stack.append(parent)
        return seen

    def _is_caught(
        self, exc: str, caught: Tuple[str, ...], namespace: str
    ) -> bool:
        if not caught:
            return False
        ancestors = None
        for raw in caught:
            if raw == CATCH_ALL:
                return True
            handler = self._canon_type(namespace, raw, CATCH_ALL)
            if handler == CATCH_ALL:
                return True
            if exc == TOP:
                # Unknown exceptions are assumed Exception-derived.
                if handler in ("Exception", "BaseException"):
                    return True
                continue
            if ancestors is None:
                ancestors = self._ancestors(exc)
            if handler in ancestors:
                return True
        return False

    # -- fixpoint ------------------------------------------------------

    def _param_mapping(
        self, call: EffectCall, callee: FunctionEffects, is_ctor: bool
    ) -> Dict[str, Tuple[str, str]]:
        """Callee param name -> the caller ``(param, field)`` bound to it."""
        mapping: Dict[str, Tuple[str, str]] = {}
        params = list(callee.params)
        offset = 0
        if is_ctor:
            offset = 1  # params[0] is the freshly constructed object
        elif callee.class_name is not None and params and params[0] in (
            "self",
            "cls",
        ):
            first = (call.dotted or "").split(".")[0]
            if first == callee.class_name:
                offset = 0  # explicit Class.method(instance, ...)
            else:
                offset = 1
                if call.receiver is not None:
                    mapping[params[0]] = call.receiver
        for index, source in enumerate(call.args):
            if source is None:
                continue
            position = index + offset
            if position < len(params):
                mapping[params[position]] = source
        for name, source in call.kwargs:
            if source is None:
                continue
            if name in callee.params or name in callee.kwonly:
                mapping[name] = source
        return mapping

    def _local_signature(self, key: str) -> EffectSignature:
        fx = self._effects[key]
        namespace = self._namespace_of[key]
        mutates = {(m.param, m.field) for m in fx.mutations}
        captures = {c.param for c in fx.captures}
        raises: Set[str] = set()
        raises_top = False
        for site in fx.raises:
            found = self._canon_type(namespace, site.type, TOP)
            if self._is_caught(found, site.caught, namespace):
                continue
            if found == TOP:
                raises_top = True
            else:
                raises.add(found)
        return EffectSignature(
            key=key,
            mutates=frozenset(mutates),
            captures=frozenset(captures),
            raises=frozenset(raises),
            global_writes=frozenset(
                name for name, _ in self._local_global_writes(key)
            ),
            raises_top=raises_top,
        )

    def _propagate(self, key: str, local: EffectSignature) -> EffectSignature:
        namespace = self._namespace_of[key]
        mutates = set(local.mutates)
        captures = set(local.captures)
        raises = set(local.raises)
        global_writes = set(local.global_writes)
        mutates_top = local.mutates_top
        captures_top = local.captures_top
        raises_top = local.raises_top
        for call, callee, is_ctor in self._adjacency[key]:
            passes_objects = (
                call.receiver is not None
                or any(source is not None for source in call.args)
                or any(source is not None for _, source in call.kwargs)
            )
            csig = (
                self._signatures.get(callee) if callee is not None else None
            )
            if csig is None:
                # Unknown callee: honest ⊤ for anything handed to it.
                if passes_objects:
                    mutates_top = True
                    captures_top = True
                if not self._is_caught(TOP, call.caught, namespace):
                    raises_top = True
                continue
            for exc in csig.raises:
                if not self._is_caught(exc, call.caught, namespace):
                    raises.add(exc)
            if csig.raises_top and not self._is_caught(
                TOP, call.caught, namespace
            ):
                raises_top = True
            global_writes |= csig.global_writes
            callee_fx = self._effects.get(callee)
            if callee_fx is None:
                continue
            mapping = self._param_mapping(call, callee_fx, is_ctor)
            if not mapping:
                continue
            for param, fieldname in csig.mutates:
                source = mapping.get(param)
                if source is None:
                    continue
                src_param, src_field = source
                if src_field == "":
                    mutates.add((src_param, fieldname))
                else:
                    mutates.add((src_param, src_field))
            if csig.mutates_top:
                mutates_top = True
            for param in csig.captures:
                source = mapping.get(param)
                if source is not None and source[1] == "":
                    captures.add(source[0])
            if csig.captures_top:
                captures_top = True
        return EffectSignature(
            key=key,
            mutates=frozenset(mutates),
            captures=frozenset(captures),
            raises=frozenset(raises),
            global_writes=frozenset(global_writes),
            mutates_top=mutates_top,
            captures_top=captures_top,
            raises_top=raises_top,
        )

    def _run_fixpoint(self) -> None:
        keys = sorted(self._effects)
        adjacency = {
            key: sorted(
                {
                    callee
                    for _, callee, _ in self._adjacency[key]
                    if callee is not None and callee in self._effects
                }
            )
            for key in keys
        }
        locals_ = {key: self._local_signature(key) for key in keys}
        for component in _tarjan(keys, adjacency):
            for key in component:
                self._signatures[key] = locals_[key]
            changed = True
            while changed:
                changed = False
                for key in sorted(component):
                    updated = self._propagate(key, locals_[key])
                    if updated != self._signatures[key]:
                        self._signatures[key] = updated
                        changed = True


def _tarjan(
    keys: Sequence[str], adjacency: Dict[str, List[str]]
) -> List[List[str]]:
    """Iterative Tarjan; components emitted callees-first (reverse
    topological order of the condensation), deterministically."""
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = 0
    for start in keys:
        if start in index_of:
            continue
        work: List[Tuple[str, int]] = [(start, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index_of[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = adjacency.get(node, [])
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in index_of:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
            if work:
                parent, _ = work[-1]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components
