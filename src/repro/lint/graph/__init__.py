"""Cross-module analysis layer for ``repro lint``.

Two stages, deliberately separated so the first can run in worker
processes (summaries are plain picklable dataclasses; ASTs never
cross a process boundary):

1. :func:`~repro.lint.graph.summary.extract_summary` reduces one
   parsed file to a :class:`~repro.lint.graph.summary.ModuleSummary`
   of defs, classes, imports, calls, and sink usages;
2. :class:`~repro.lint.graph.builder.ProjectGraph` assembles the
   summaries into a project symbol table + resolved call graph with
   deterministic BFS reachability (shortest call paths, stable tie
   breaks).

Rules opt in via ``needs_graph`` and receive the shared instance —
the graph is built once per lint run and cached on the engine.
"""

from repro.lint.graph.builder import CallSite, Edge, FunctionNode, ProjectGraph
from repro.lint.graph.summary import (
    ArgRef,
    CallRef,
    ClassSummary,
    FunctionSummary,
    ModuleSummary,
    extract_summary,
    module_name_for_path,
)

__all__ = [
    "ArgRef",
    "CallRef",
    "CallSite",
    "ClassSummary",
    "Edge",
    "FunctionNode",
    "FunctionSummary",
    "ModuleSummary",
    "ProjectGraph",
    "extract_summary",
    "module_name_for_path",
]
