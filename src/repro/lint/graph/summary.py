"""Per-file analysis summaries — the call graph's unit of exchange.

The whole-program pass (``repro.lint.graph.builder``) never touches an
AST: each file is condensed — in the same pass that runs the per-file
rules, possibly inside a ``--jobs`` worker process — into a
:class:`ModuleSummary` of plain tuples and strings.  Summaries pickle
cheaply across the process-pool boundary, and the single-process graph
phase assembles them into a project-wide symbol table afterwards.

This module is deliberately a *leaf*: it imports only the standard
library (plus the equally-leaf effect model in
:mod:`repro.lint.effects.model`), so the engine, the rules, and the
builder can all depend on it without cycles.

What a summary records per function (``<module>`` stands for
module-level statements, including class bodies):

* every call, with the literal dotted text (``self.run``), the
  import-canonical form (``time.time``) when the base name was bound
  by an import, the receiver's constructor class when the receiver is
  a local built in the same scope (``sim = Simulator(...); sim.run()``),
  and a descriptor of each argument that might be a first-order
  callable;
* determinism-sink facts that are not calls: ``os.environ`` reads and
  built-in ``hash()`` calls;
* pool-safety facts: ``global`` writes and telemetry-emitting calls
  (``*.emit(...)`` or a ``TelemetryWriter`` construction);
* telemetry event sites (dict literals with an ``"event"`` key,
  ``read_telemetry(event=...)`` filters).

Imports are resolved locally, including *relative* imports (against
the module's dotted name, when the file lies on a ``repro/`` spine)
and star imports (recorded as such — the builder treats them as a
fallback namespace, and documents them as a blind spot).
``if TYPE_CHECKING:`` bodies are skipped entirely: they create no
runtime dependency, so they must create no call-graph edge.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "ArgRef",
    "CallRef",
    "ClassSummary",
    "FunctionSummary",
    "ModuleSummary",
    "MODULE_SCOPE",
    "extract_summary",
    "module_name_for_path",
]

#: Qualname of the synthetic function holding module-level statements.
MODULE_SCOPE = "<module>"


@dataclass(frozen=True)
class ArgRef:
    """One argument of a call, described just enough to spot callables.

    ``kind`` is ``"name"`` / ``"attribute"`` (potentially a first-order
    callable reference), ``"lambda"``, ``"call"``, ``"constant"``, or
    ``"other"``.  ``dotted``/``canonical`` mirror the fields on
    :class:`CallRef` and are only set for name/attribute arguments.
    """

    kind: str
    dotted: Optional[str] = None
    canonical: Optional[str] = None


@dataclass(frozen=True)
class CallRef:
    """One call expression inside a function body."""

    dotted: Optional[str]
    canonical: Optional[str]
    receiver_class: Optional[str]
    lineno: int
    args: Tuple[ArgRef, ...] = ()


@dataclass(frozen=True)
class FunctionSummary:
    """One function, method, or the synthetic module scope."""

    qualname: str
    lineno: int
    #: True for a plain ``def`` directly at module level — the only
    #: shape that pickles across the process-pool boundary.
    is_toplevel: bool
    class_name: Optional[str]
    calls: Tuple[CallRef, ...]
    env_reads: Tuple[int, ...] = ()
    hash_calls: Tuple[int, ...] = ()
    global_writes: Tuple[Tuple[str, int], ...] = ()
    emit_calls: Tuple[int, ...] = ()


@dataclass(frozen=True)
class ClassSummary:
    """One module-level class: its bases (canonical when imported),
    the names of its directly defined methods, and its ``__slots__``
    entries (``None`` when the class declares none — the
    mutation-after-freeze rules scope memo-field protection to slotted
    classes, exactly like RPR202)."""

    name: str
    lineno: int
    bases: Tuple[str, ...]
    methods: Tuple[str, ...]
    slots: Optional[Tuple[str, ...]] = None


@dataclass(frozen=True)
class ModuleSummary:
    """Everything the project graph needs to know about one file."""

    path: str
    module: Optional[str]
    layer: str
    imports: Tuple[Tuple[str, str], ...]
    star_imports: Tuple[str, ...]
    functions: Tuple[FunctionSummary, ...]
    classes: Tuple[ClassSummary, ...]
    #: Module-level ``NAME = other_name`` aliases (callable re-exports).
    aliases: Tuple[Tuple[str, str], ...]
    #: Module-level ``NAME = ("a", "b")`` string tuples/lists — how the
    #: pool-safety pass finds ``POOL_BOUNDARY`` annotations.
    string_tuples: Tuple[Tuple[str, Tuple[str, ...]], ...]
    #: ``(event_name, "emit"|"filter", lineno)`` telemetry references.
    event_sites: Tuple[Tuple[str, str, int], ...] = ()
    defines_event_schemas: bool = False
    #: Per-function local effect records (the dataflow half of the
    #: whole-program pass); see :mod:`repro.lint.effects`.  Extracted
    #: in the same ``--jobs`` worker pass as everything else and keyed
    #: by the same qualnames as :attr:`functions`.
    effects: Tuple["FunctionEffects", ...] = ()  # noqa: F821
    #: Per-function local unit facts (symbolic terms for returns,
    #: arguments, attribute writes, checks, telemetry emits); the
    #: input of the interprocedural unit fixpoint in
    #: :mod:`repro.lint.dimflow`.  ``None`` only on summaries built by
    #: pre-dimflow callers.
    units: Optional["ModuleUnits"] = None  # noqa: F821


def module_name_for_path(display_path: str) -> Optional[str]:
    """Dotted module name of a file lying on a ``repro/`` spine.

    ``src/repro/sim/engine.py`` -> ``repro.sim.engine``;
    ``.../fixtures/RPR601/bad/repro/clockutil.py`` -> ``repro.clockutil``
    (fixture corpora embed the spine so layer- and module-scoped logic
    sees them exactly as it sees the real tree).  ``__init__.py`` maps
    to its package.  Files with no ``repro`` ancestor return ``None``
    — they still participate in the graph, namespaced by path.
    """
    parts = display_path.replace("\\", "/").split("/")
    if not parts or not parts[-1].endswith(".py"):
        return None
    anchor = None
    for index, part in enumerate(parts[:-1]):
        if part == "repro":
            anchor = index
    if anchor is None:
        return None
    tail = list(parts[anchor:-1])
    stem = parts[-1][: -len(".py")]
    if stem != "__init__":
        tail.append(stem)
    return ".".join(tail)


class _Bindings:
    """Module-local name -> canonical dotted path, imports only.

    The same contract as the rules' ``ImportMap`` (names never bound by
    an import resolve to ``None``), extended with relative-import
    resolution against the module's own dotted name and with star
    imports recorded separately.
    """

    def __init__(self, module: Optional[str], is_package: bool) -> None:
        self.map: Dict[str, str] = {}
        self.stars: List[str] = []
        self._module = module
        self._is_package = is_package

    def _resolve_level(self, level: int) -> Optional[str]:
        if self._module is None:
            return None
        parts = self._module.split(".")
        if not self._is_package:
            parts = parts[:-1]
        drop = level - 1
        if drop > len(parts):
            return None
        base = parts[: len(parts) - drop]
        return ".".join(base) if base else None

    def add_import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            canonical = alias.name if alias.asname else local
            self.map[local] = canonical

    def add_import_from(self, node: ast.ImportFrom) -> None:
        if node.level:
            base = self._resolve_level(node.level)
            if base is None:
                return
            module = f"{base}.{node.module}" if node.module else base
        else:
            if node.module is None:
                return
            module = node.module
        for alias in node.names:
            if alias.name == "*":
                self.stars.append(module)
                continue
            local = alias.asname or alias.name
            self.map[local] = f"{module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        chain: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            chain.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = self.map.get(current.id)
        if base is None:
            return None
        chain.append(base)
        return ".".join(reversed(chain))


def _dotted(node: ast.AST) -> Optional[str]:
    chain: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        chain.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    chain.append(current.id)
    return ".".join(reversed(chain))


def _class_slots(node: ast.ClassDef) -> Optional[Tuple[str, ...]]:
    """String entries of a class's ``__slots__``, or ``None``."""
    for statement in node.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets, value = [statement.target], statement.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                names: List[str] = []
                if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                    for element in value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            names.append(element.value)
                return tuple(names)
    return None


def _is_type_checking_test(node: ast.expr) -> bool:
    return (isinstance(node, ast.Name) and node.id == "TYPE_CHECKING") or (
        isinstance(node, ast.Attribute) and node.attr == "TYPE_CHECKING"
    )


_ENV_READS = frozenset({"os.environ", "os.getenv", "os.environb"})


@dataclass
class _Scope:
    """Mutable accumulator for one function scope (or the module scope)."""

    qualname: str
    lineno: int
    is_toplevel: bool
    class_name: Optional[str]
    calls: List[CallRef] = field(default_factory=list)
    env_reads: List[int] = field(default_factory=list)
    hash_calls: List[int] = field(default_factory=list)
    global_names: List[str] = field(default_factory=list)
    global_writes: List[Tuple[str, int]] = field(default_factory=list)
    emit_calls: List[int] = field(default_factory=list)
    #: Locals built by calling something resolvable: ``sim =
    #: Simulator(...)`` binds ``sim`` to the constructor's canonical.
    ctor_locals: Dict[str, str] = field(default_factory=dict)

    def freeze(self) -> FunctionSummary:
        return FunctionSummary(
            qualname=self.qualname,
            lineno=self.lineno,
            is_toplevel=self.is_toplevel,
            class_name=self.class_name,
            calls=tuple(self.calls),
            env_reads=tuple(self.env_reads),
            hash_calls=tuple(self.hash_calls),
            global_writes=tuple(self.global_writes),
            emit_calls=tuple(self.emit_calls),
        )


class _Extractor:
    def __init__(self, bindings: _Bindings) -> None:
        self.bindings = bindings
        self.functions: List[FunctionSummary] = []
        self.classes: List[ClassSummary] = []
        self.aliases: List[Tuple[str, str]] = []
        self.string_tuples: List[Tuple[str, Tuple[str, ...]]] = []
        self.event_sites: List[Tuple[str, str, int]] = []
        self.defines_event_schemas = False

    # -- entry -----------------------------------------------------------

    def run(self, tree: ast.Module) -> None:
        module_scope = _Scope(
            qualname=MODULE_SCOPE, lineno=1, is_toplevel=False, class_name=None
        )
        for node in tree.body:
            self._statement(node, module_scope, class_stack=())
        self.functions.append(module_scope.freeze())

    # -- statement dispatch ----------------------------------------------

    def _statement(
        self, node: ast.stmt, scope: _Scope, class_stack: Tuple[str, ...]
    ) -> None:
        if isinstance(node, ast.Import):
            self.bindings.add_import(node)
            return
        if isinstance(node, ast.ImportFrom):
            self.bindings.add_import_from(node)
            return
        if isinstance(node, ast.If) and _is_type_checking_test(node.test):
            # Type-only blocks vanish at runtime: no imports, no edges.
            for orelse in node.orelse:
                self._statement(orelse, scope, class_stack)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Decorator expressions run in the *enclosing* scope.
            for decorator in node.decorator_list:
                self._expression(decorator, scope)
            self._function(node, scope, class_stack)
            return
        if isinstance(node, ast.ClassDef):
            for decorator in node.decorator_list:
                self._expression(decorator, scope)
            self._class(node, scope, class_stack)
            return
        if isinstance(node, ast.Global):
            scope.global_names.extend(node.names)
            return
        if not class_stack and scope.qualname == MODULE_SCOPE:
            self._module_level_assign(node)
        self._track_assignments(node, scope)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            # ``with Ctor(...) as name:`` binds like ``name = Ctor(...)``
            # — the idiomatic way a ProcessPoolExecutor enters scope.
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name) and isinstance(
                    item.context_expr, ast.Call
                ):
                    canonical = self.bindings.resolve(
                        item.context_expr.func
                    ) or _dotted(item.context_expr.func)
                    if canonical is not None:
                        scope.ctor_locals[item.optional_vars.id] = canonical
        for child in ast.iter_child_nodes(node):
            self._child(child, scope, class_stack)

    def _child(
        self, child: ast.AST, scope: _Scope, class_stack: Tuple[str, ...]
    ) -> None:
        if isinstance(child, ast.stmt):
            self._statement(child, scope, class_stack)
        elif isinstance(child, ast.expr):
            self._expression(child, scope)
        else:
            # withitem, ExceptHandler, match cases, ... — containers
            # whose own children are the statements/expressions.
            for sub in ast.iter_child_nodes(child):
                self._child(sub, scope, class_stack)

    def _function(
        self,
        node: ast.stmt,
        parent: _Scope,
        class_stack: Tuple[str, ...],
    ) -> None:
        prefix = parent.qualname + "." if parent.qualname != MODULE_SCOPE else ""
        if class_stack and parent.qualname == MODULE_SCOPE:
            prefix = ".".join(class_stack) + "."
        qualname = prefix + node.name  # type: ignore[attr-defined]
        scope = _Scope(
            qualname=qualname,
            lineno=node.lineno,
            is_toplevel=not class_stack and parent.qualname == MODULE_SCOPE,
            class_name=class_stack[-1] if class_stack else None,
        )
        for default in getattr(node.args, "defaults", []) + getattr(
            node.args, "kw_defaults", []
        ):
            if default is not None:
                self._expression(default, parent)
        for statement in node.body:  # type: ignore[attr-defined]
            self._statement(statement, scope, class_stack=())
        self.functions.append(scope.freeze())

    def _class(
        self, node: ast.ClassDef, parent: _Scope, class_stack: Tuple[str, ...]
    ) -> None:
        for base in node.bases:
            self._expression(base, parent)
        stack = class_stack + (node.name,)
        methods = [
            child.name
            for child in node.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        if not class_stack:
            bases = tuple(
                self.bindings.resolve(base) or _dotted(base) or "<unknown>"
                for base in node.bases
            )
            self.classes.append(
                ClassSummary(
                    name=node.name,
                    lineno=node.lineno,
                    bases=bases,
                    methods=tuple(methods),
                    slots=_class_slots(node),
                )
            )
        for child in node.body:
            # Class-body statements execute at import time: calls there
            # belong to the module scope, but methods get their own.
            self._statement(child, parent, stack)

    # -- module-level bookkeeping ----------------------------------------

    def _module_level_assign(self, node: ast.stmt) -> None:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None or len(targets) != 1:
            return
        target = targets[0]
        if not isinstance(target, ast.Name):
            return
        if target.id == "EVENT_SCHEMAS":
            self.defines_event_schemas = True
        if isinstance(value, (ast.Name, ast.Attribute)):
            alias = self.bindings.resolve(value) or _dotted(value)
            if alias is not None:
                self.aliases.append((target.id, alias))
        elif isinstance(value, (ast.Tuple, ast.List)) and value.elts:
            strings = []
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    strings.append(element.value)
                else:
                    return
            self.string_tuples.append((target.id, tuple(strings)))

    def _track_assignments(self, node: ast.stmt, scope: _Scope) -> None:
        """Record ``name = Ctor(...)`` so method calls on the local can
        be resolved, and ``global``-declared writes."""
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
            value = node.value
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
            value = node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id in scope.global_names:
                scope.global_writes.append((target.id, node.lineno))
            if isinstance(value, ast.Call):
                canonical = self.bindings.resolve(value.func) or _dotted(
                    value.func
                )
                if canonical is not None:
                    scope.ctor_locals[target.id] = canonical
                else:
                    scope.ctor_locals.pop(target.id, None)
            elif value is not None:
                scope.ctor_locals.pop(target.id, None)

    # -- expressions ------------------------------------------------------

    def _expression(self, node: ast.expr, scope: _Scope) -> None:
        for expr in self._walk_expr(node):
            if isinstance(expr, ast.Call):
                self._call(expr, scope)
            elif isinstance(expr, (ast.Attribute, ast.Name)):
                canonical = self.bindings.resolve(expr)
                if canonical in _ENV_READS:
                    scope.env_reads.append(expr.lineno)
            elif isinstance(expr, ast.Dict):
                self._event_dict(expr)

    def _walk_expr(self, node: ast.expr) -> Iterator[ast.expr]:
        # Expressions cannot contain statements, so a plain walk stays
        # inside the scope (lambda bodies and comprehension generators
        # included — their calls belong to the enclosing function).
        return (n for n in ast.walk(node) if isinstance(n, ast.expr))

    def _call(self, node: ast.Call, scope: _Scope) -> None:
        dotted = _dotted(node.func)
        canonical = self.bindings.resolve(node.func)
        if dotted == "hash" and canonical is None:
            scope.hash_calls.append(node.lineno)
        receiver_class = None
        if (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
        ):
            receiver_class = scope.ctor_locals.get(node.func.value.id)
        if dotted is not None and dotted.rpartition(".")[2] == "emit":
            scope.emit_calls.append(node.lineno)
        if canonical is not None and canonical.rpartition(".")[2] == (
            "TelemetryWriter"
        ):
            scope.emit_calls.append(node.lineno)
        elif canonical is None and dotted == "TelemetryWriter":
            scope.emit_calls.append(node.lineno)
        args = tuple(self._arg_ref(arg) for arg in node.args)
        scope.calls.append(
            CallRef(
                dotted=dotted,
                canonical=canonical,
                receiver_class=receiver_class,
                lineno=node.lineno,
                args=args,
            )
        )
        for keyword in node.keywords:
            if (
                keyword.arg == "event"
                and dotted is not None
                and dotted.rpartition(".")[2] == "read_telemetry"
                and isinstance(keyword.value, ast.Constant)
                and isinstance(keyword.value.value, str)
            ):
                self.event_sites.append(
                    (keyword.value.value, "filter", keyword.value.lineno)
                )

    def _arg_ref(self, node: ast.expr) -> ArgRef:
        if isinstance(node, ast.Lambda):
            return ArgRef(kind="lambda")
        if isinstance(node, ast.Name):
            return ArgRef(
                kind="name",
                dotted=node.id,
                canonical=self.bindings.resolve(node),
            )
        if isinstance(node, ast.Attribute):
            return ArgRef(
                kind="attribute",
                dotted=_dotted(node),
                canonical=self.bindings.resolve(node),
            )
        if isinstance(node, ast.Call):
            return ArgRef(kind="call")
        if isinstance(node, ast.Constant):
            return ArgRef(kind="constant")
        return ArgRef(kind="other")

    def _event_dict(self, node: ast.Dict) -> None:
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "event"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                self.event_sites.append((value.value, "emit", value.lineno))


def extract_summary(
    tree: ast.Module,
    display_path: str,
    layer: str,
) -> ModuleSummary:
    """Condense one parsed file into its :class:`ModuleSummary`."""
    module = module_name_for_path(display_path)
    is_package = display_path.replace("\\", "/").endswith("/__init__.py")
    bindings = _Bindings(module, is_package)
    extractor = _Extractor(bindings)
    extractor.run(tree)
    # Imported lazily: the extractors reuse this module's fully
    # populated bindings, so a top-level import here would be a cycle.
    from repro.lint.dimflow.extract import extract_units
    from repro.lint.effects.extract import extract_effects

    return ModuleSummary(
        path=display_path,
        module=module,
        layer=layer,
        imports=tuple(sorted(bindings.map.items())),
        star_imports=tuple(extractor.bindings.stars),
        functions=tuple(extractor.functions),
        classes=tuple(extractor.classes),
        aliases=tuple(extractor.aliases),
        string_tuples=tuple(extractor.string_tuples),
        event_sites=tuple(extractor.event_sites),
        defines_event_schemas=extractor.defines_event_schemas,
        effects=extract_effects(tree, bindings),
        units=extract_units(tree, bindings),
    )
