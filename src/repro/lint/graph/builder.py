"""Project symbol table and call graph, assembled from file summaries.

One :class:`ProjectGraph` is built per lint run (the engine caches it
and hands it to every rule that sets ``needs_graph``).  Construction
is a single pass over the :class:`~repro.lint.graph.summary.ModuleSummary`
list: index every module's functions, classes, and aliases, then
resolve each recorded call to a node key.

Resolution order for a call (first match wins):

1. the import-canonical dotted path (``repro.sim.engine.tick`` ->
   longest known module prefix + symbol/method lookup);
2. ``self.x`` / ``cls.x`` inside a method -> the method in its own
   class, then depth-first through resolvable base classes;
3. ``var.x`` where ``var`` was built by a resolvable constructor in
   the same scope -> the method on that class;
4. a bare name -> the module's own defs, then its aliases, then its
   ``from x import name`` bindings, then (uniquely) star-imports.

Anything else — ``getattr(...)()`` dynamic dispatch, calls through
containers, attribute chains on unknown objects — degrades to an
*unknown callee*: counted, serialized, and never guessed at, so the
graph under-approximates rather than over-reports.  Constructor calls
edge into ``__init__`` and ``__post_init__`` when the class defines
them.  First-order callables passed as arguments (``pool.submit(fn,
...)``, ``map(fn, xs)``) produce ``ref`` edges from the caller: the
callee may invoke them, so reachability must assume it does.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.lint.graph.summary import (
    MODULE_SCOPE,
    ArgRef,
    CallRef,
    ClassSummary,
    FunctionSummary,
    ModuleSummary,
)

__all__ = ["CallSite", "Edge", "FunctionNode", "ProjectGraph"]

#: Call receivers that mark a process-pool boundary crossing.
_POOL_CLASSES = ("ProcessPoolExecutor",)
#: Methods on a pool that take a callable as their first argument.
_POOL_METHODS = frozenset({"submit", "map"})
#: Module-level tuple annotating extra worker entry points.
_BOUNDARY_NAME = "POOL_BOUNDARY"


@dataclass(frozen=True)
class Edge:
    """One resolved call edge.  ``kind`` is ``"call"`` for a direct
    invocation and ``"ref"`` for a first-order callable argument."""

    to: str
    lineno: int
    kind: str = "call"


@dataclass
class FunctionNode:
    """One function (or module scope) in the project graph."""

    key: str
    namespace: str
    path: str
    layer: str
    summary: FunctionSummary
    edges: List[Edge] = field(default_factory=list)
    unknown_callees: List[str] = field(default_factory=list)

    @property
    def qualname(self) -> str:
        return self.summary.qualname

    def label(self) -> str:
        """Human-readable name used in call-path renderings."""
        if self.namespace.endswith(".py") or "/" in self.namespace:
            return f"{self.path}::{self.qualname}"
        return f"{self.namespace}.{self.qualname}"


@dataclass(frozen=True)
class CallSite:
    """One pool-boundary call site (``pool.submit(...)``/``pool.map``)."""

    node_key: str
    call: CallRef
    method: str


class ProjectGraph:
    """Whole-project call graph with reachability queries."""

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self._modules: Dict[str, ModuleSummary] = {}
        self._nodes: Dict[str, FunctionNode] = {}
        self._classes: Dict[Tuple[str, str], ClassSummary] = {}
        self._pool_sites: List[CallSite] = []
        self.files_summarized = len(summaries)
        for summary in summaries:
            namespace = summary.module or summary.path
            # Later duplicates (two files claiming one module name can
            # only happen in pathological corpora) keep the first.
            self._modules.setdefault(namespace, summary)
            for function in summary.functions:
                key = f"{namespace}::{function.qualname}"
                if key in self._nodes:
                    continue
                self._nodes[key] = FunctionNode(
                    key=key,
                    namespace=namespace,
                    path=summary.path,
                    layer=summary.layer,
                    summary=function,
                )
            for cls in summary.classes:
                self._classes.setdefault((namespace, cls.name), cls)
        self._resolve_all()

    # -- queries ----------------------------------------------------------

    def __iter__(self) -> Iterator[FunctionNode]:
        for key in sorted(self._nodes):
            yield self._nodes[key]

    def node(self, key: str) -> Optional[FunctionNode]:
        return self._nodes.get(key)

    def nodes_in_layers(self, layers: Iterable[str]) -> List[FunctionNode]:
        wanted = set(layers)
        return [node for node in self if node.layer in wanted]

    def pool_call_sites(self) -> List[CallSite]:
        """Every resolved ``pool.submit``/``pool.map`` call site."""
        return list(self._pool_sites)

    def worker_entry_keys(self) -> List[str]:
        """Node keys that execute inside pool worker processes.

        The union of every resolvable first callable argument at a
        pool call site and every function named by a module-level
        ``POOL_BOUNDARY`` tuple (the explicit annotation for
        boundaries the resolver cannot see).
        """
        keys = set()
        for site in self._pool_sites:
            target = self._first_callable(site)
            if target is not None:
                keys.add(target.key)
        for namespace, summary in self._modules.items():
            for name, values in summary.string_tuples:
                if name != _BOUNDARY_NAME:
                    continue
                for value in values:
                    node = self._nodes.get(f"{namespace}::{value}")
                    if node is not None:
                        keys.add(node.key)
        return sorted(keys)

    def resolve_call(self, node_key: str, call: CallRef):
        """Public call resolution for effect propagation.

        Returns the target :class:`FunctionNode`, a ``(namespace,
        ClassSummary)`` tuple for a constructor call, or ``None`` for
        an unknown callee — exactly the contract of the internal
        resolver the edge builder uses, so the effect fixpoint walks
        the same graph the reachability rules do.
        """
        node = self._nodes.get(node_key)
        if node is None:
            return None
        return self._resolve_ref(node, call)

    def module_summaries(self) -> Dict[str, ModuleSummary]:
        """Namespace -> module summary (annotation discovery)."""
        return dict(self._modules)

    def resolve_type(self, namespace: str, name: str) -> Optional[str]:
        """Canonical name of the class ``name`` denotes in ``namespace``.

        ``None`` when the reference does not resolve to a project
        class (builtins and unknowns land here — callers decide how
        honestly to degrade).
        """
        if "." in name:
            target = self._resolve_canonical(name)
        else:
            target = self._resolve_local(namespace, name)
        if isinstance(target, tuple):
            target_namespace, cls = target
            return f"{target_namespace}.{cls.name}"
        return None

    def class_hierarchy(self) -> Dict[str, Tuple[str, ...]]:
        """Canonical class name -> its base names.

        Bases resolve to canonical project names when possible and
        stay literal otherwise (``"Exception"`` for builtins), so the
        effect analysis can chain project hierarchies into the builtin
        exception tree.
        """
        out: Dict[str, Tuple[str, ...]] = {}
        for (namespace, name), cls in self._classes.items():
            bases = []
            for base in cls.bases:
                resolved = self._resolve_base(namespace, base)
                if resolved is not None:
                    base_namespace, base_cls = resolved
                    bases.append(f"{base_namespace}.{base_cls.name}")
                else:
                    bases.append(base)
            out[f"{namespace}.{name}"] = tuple(bases)
        return out

    def resolve_argument(
        self, site_node_key: str, arg: ArgRef
    ) -> Optional[FunctionNode]:
        """Resolve a callable-looking argument at a call site."""
        node = self._nodes.get(site_node_key)
        if node is None or arg.kind not in ("name", "attribute"):
            return None
        target = self._resolve_ref(
            node,
            CallRef(
                dotted=arg.dotted,
                canonical=arg.canonical,
                receiver_class=None,
                lineno=0,
            ),
        )
        if isinstance(target, FunctionNode):
            return target
        return None

    def _first_callable(self, site: CallSite) -> Optional[FunctionNode]:
        if not site.call.args:
            return None
        return self.resolve_argument(site.node_key, site.call.args[0])

    def reachable_from(
        self, roots: Iterable[str]
    ) -> Dict[str, Tuple[str, ...]]:
        """BFS reachability with shortest call paths.

        Returns ``{node_key: (root_key, ..., node_key)}`` for every
        node reachable from ``roots`` (roots map to one-element
        paths).  Deterministic: roots and adjacency are visited in
        sorted order, so ties always break the same way.
        """
        paths: Dict[str, Tuple[str, ...]] = {}
        queue = deque()
        for root in sorted(set(roots)):
            if root in self._nodes and root not in paths:
                paths[root] = (root,)
                queue.append(root)
        while queue:
            current = queue.popleft()
            node = self._nodes[current]
            for edge in sorted(node.edges, key=lambda e: (e.to, e.lineno)):
                if edge.to not in paths and edge.to in self._nodes:
                    paths[edge.to] = paths[current] + (edge.to,)
                    queue.append(edge.to)
        return paths

    def render_path(self, path: Tuple[str, ...]) -> str:
        """``a -> b -> c`` with human labels, for finding messages."""
        return " -> ".join(
            self._nodes[key].label() if key in self._nodes else key
            for key in path
        )

    # -- serialization ----------------------------------------------------

    def to_json(self) -> str:
        """Stable JSON document (the CI artifact format)."""
        nodes = []
        for node in self:
            nodes.append(
                {
                    "key": node.key,
                    "path": node.path,
                    "layer": node.layer,
                    "line": node.summary.lineno,
                    "toplevel": node.summary.is_toplevel,
                    "edges": [
                        {"to": e.to, "line": e.lineno, "kind": e.kind}
                        for e in node.edges
                    ],
                    "unknown_callees": sorted(set(node.unknown_callees)),
                }
            )
        document = {
            "version": 1,
            "files": self.files_summarized,
            "functions": len(self._nodes),
            "edges": sum(len(n.edges) for n in self._nodes.values()),
            "worker_entries": self.worker_entry_keys(),
            "nodes": nodes,
        }
        return json.dumps(document, indent=2, sort_keys=True) + "\n"

    # -- resolution -------------------------------------------------------

    def _resolve_all(self) -> None:
        for key in sorted(self._nodes):
            node = self._nodes[key]
            for call in node.summary.calls:
                self._resolve_call(node, call)

    def _resolve_call(self, node: FunctionNode, call: CallRef) -> None:
        target = self._resolve_ref(node, call)
        if isinstance(target, FunctionNode):
            node.edges.append(Edge(to=target.key, lineno=call.lineno))
        elif isinstance(target, tuple):  # a class: edge into construction
            namespace, cls = target
            for ctor in ("__init__", "__post_init__"):
                ctor_key = f"{namespace}::{cls.name}.{ctor}"
                if ctor_key in self._nodes:
                    node.edges.append(Edge(to=ctor_key, lineno=call.lineno))
        elif target is None and call.canonical is None and call.dotted:
            # Neither an import nor a resolvable project symbol: the
            # honest answer is "unknown callee" (builtins land here
            # too; they have no edges to contribute either way).
            node.unknown_callees.append(call.dotted)
        self._note_pool_site(node, call)
        for arg in call.args:
            if arg.kind in ("name", "attribute"):
                resolved = self.resolve_argument(node.key, arg)
                if resolved is not None:
                    node.edges.append(
                        Edge(to=resolved.key, lineno=call.lineno, kind="ref")
                    )

    def _note_pool_site(self, node: FunctionNode, call: CallRef) -> None:
        if call.dotted is None or "." not in call.dotted:
            return
        method = call.dotted.rpartition(".")[2]
        if method not in _POOL_METHODS:
            return
        receiver = call.receiver_class or ""
        if receiver.rpartition(".")[2] in _POOL_CLASSES:
            self._pool_sites.append(
                CallSite(node_key=node.key, call=call, method=method)
            )

    def _resolve_ref(self, node: FunctionNode, call: CallRef):
        """Resolve one call to a FunctionNode, a ``(namespace, Class)``
        tuple, or ``None``."""
        if call.canonical is not None:
            return self._resolve_canonical(call.canonical)
        if call.dotted is None:
            return None
        parts = call.dotted.split(".")
        if parts[0] in ("self", "cls") and node.summary.class_name:
            if len(parts) == 2:
                return self._resolve_method(
                    node.namespace, node.summary.class_name, parts[1]
                )
            return None
        if call.receiver_class is not None and len(parts) == 2:
            target = self._resolve_canonical(call.receiver_class)
            if isinstance(target, tuple):
                namespace, cls = target
                return self._resolve_method(namespace, cls.name, parts[1])
            return None
        if len(parts) == 1:
            return self._resolve_local(node.namespace, parts[0])
        if len(parts) == 2:
            # Class.method or imported-module attr without an import
            # binding: try a local class first.
            method = self._resolve_method(node.namespace, parts[0], parts[1])
            if method is not None:
                return method
        return None

    def _resolve_local(self, namespace: str, name: str, *, _depth: int = 0):
        if _depth > 4:
            return None
        key = f"{namespace}::{name}"
        if key in self._nodes:
            return self._nodes[key]
        if (namespace, name) in self._classes:
            return (namespace, self._classes[(namespace, name)])
        summary = self._modules.get(namespace)
        if summary is None:
            return None
        for alias, target in summary.aliases:
            if alias == name:
                return self._resolve_canonical(target) or (
                    self._resolve_local(namespace, target, _depth=_depth + 1)
                    if "." not in target
                    else None
                )
        imports = dict(summary.imports)
        if name in imports:
            return self._resolve_canonical(imports[name])
        hits = []
        for star in sorted(set(summary.star_imports)):
            found = self._resolve_local(star, name, _depth=_depth + 1)
            if found is not None:
                hits.append(found)
        if len(hits) == 1:
            return hits[0]
        return None  # absent or ambiguous: degrade, don't guess

    def _resolve_canonical(self, canonical: str):
        parts = canonical.split(".")
        for split in range(len(parts), 0, -1):
            namespace = ".".join(parts[:split])
            if namespace not in self._modules:
                continue
            rest = parts[split:]
            if not rest:
                return None  # a module reference, not a callable
            if len(rest) == 1:
                return self._resolve_local(namespace, rest[0])
            if len(rest) == 2:
                return self._resolve_method(namespace, rest[0], rest[1])
            return None
        return None

    def _resolve_method(
        self,
        namespace: str,
        class_name: str,
        method: str,
        *,
        _seen: Optional[frozenset] = None,
    ):
        seen = _seen or frozenset()
        if (namespace, class_name) in seen:
            return None
        cls = self._classes.get((namespace, class_name))
        if cls is None:
            return None
        if method in cls.methods:
            return self._nodes.get(f"{namespace}::{class_name}.{method}")
        marker = seen | {(namespace, class_name)}
        for base in cls.bases:
            resolved = self._resolve_base(namespace, base)
            if resolved is None:
                continue
            base_namespace, base_cls = resolved
            found = self._resolve_method(
                base_namespace, base_cls.name, method, _seen=marker
            )
            if found is not None:
                return found
        return None

    def _resolve_base(
        self, namespace: str, base: str
    ) -> Optional[Tuple[str, ClassSummary]]:
        if "." not in base:
            local = self._classes.get((namespace, base))
            if local is not None:
                return (namespace, local)
            target = self._resolve_local(namespace, base)
            if isinstance(target, tuple):
                return target
            return None
        target = self._resolve_canonical(base)
        if isinstance(target, tuple):
            return target
        return None
