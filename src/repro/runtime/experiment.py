"""Experiment harness: policy comparison on one workload.

Every evaluation figure in the paper reports speedups of one or more
policies over the conventional (interference-oblivious) schedule on a
given machine.  :func:`compare_policies` packages that protocol —
including the 20-run/middle-10 noise discipline when requested — and
returns a tidy result the benchmarks and examples format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.offline import offline_exhaustive_search
from repro.core.policies import OnlineExhaustivePolicy
from repro.core.throttle import DynamicThrottlingPolicy
from repro.errors import MeasurementError
from repro.runtime.measurement import measure_makespan
from repro.sim.machine import Machine, i7_860
from repro.sim.noise import GaussianNoise
from repro.sim.scheduler import FixedMtlPolicy, SchedulingPolicy, conventional_policy
from repro.sim.simulator import Simulator
from repro.stream.program import StreamProgram

__all__ = ["PolicyOutcome", "ComparisonResult", "compare_policies", "paper_policy_suite"]


@dataclass(frozen=True)
class PolicyOutcome:
    """One policy's measured performance on one workload."""

    policy_name: str
    makespan: float
    speedup: float
    selected_mtl: Optional[int]
    probe_fraction: float


@dataclass(frozen=True)
class ComparisonResult:
    """All policies' outcomes on one workload/machine combination."""

    program_name: str
    machine_name: str
    baseline_makespan: float
    outcomes: Tuple[PolicyOutcome, ...]

    def outcome(self, policy_name: str) -> PolicyOutcome:
        for entry in self.outcomes:
            if entry.policy_name == policy_name:
                return entry
        raise MeasurementError(
            f"no outcome for policy {policy_name!r}; have "
            f"{[o.policy_name for o in self.outcomes]}"
        )

    def speedup(self, policy_name: str) -> float:
        return self.outcome(policy_name).speedup


def compare_policies(
    program: StreamProgram,
    policies: Dict[str, Callable[[], SchedulingPolicy]],
    machine: Optional[Machine] = None,
    repeated_runs: int = 0,
) -> ComparisonResult:
    """Measure each policy's speedup over the conventional schedule.

    Args:
        program: Workload under test.
        policies: Name to fresh-policy factory.
        machine: Target machine (defaults to the 1-DIMM i7-860).
        repeated_runs: 0 for a single noise-free run per policy
            (deterministic, used in tests); otherwise the number of
            noisy runs fed to the middle-10 protocol (20 in the paper).
    """
    target = machine if machine is not None else i7_860()

    def measured_makespan(factory: Callable[[], SchedulingPolicy]) -> float:
        if repeated_runs <= 0:
            return Simulator(target).run(program, factory()).makespan
        return measure_makespan(
            program, factory, machine=target, runs=repeated_runs
        ).value

    baseline = measured_makespan(lambda: conventional_policy(target.context_count))

    # The instrumented run (MTL selection, probe accounting) sees the
    # same kind of environment the measured runs do: noisy when the
    # repeated-run protocol is in force, noise-free otherwise.
    instrument_noise = (
        GaussianNoise(seed=997) if repeated_runs > 0 else None
    )

    outcomes = []
    for name, factory in policies.items():
        # One instrumented run provides MTL selection and probe
        # accounting even when the makespan comes from repeated runs.
        instrumented_policy = factory()
        instrumented = Simulator(target, noise=instrument_noise).run(
            program, instrumented_policy
        )
        makespan = measured_makespan(factory)
        try:
            selected: Optional[int] = instrumented.dominant_mtl()
        except MeasurementError:
            selected = None
        outcomes.append(
            PolicyOutcome(
                policy_name=name,
                makespan=makespan,
                speedup=baseline / makespan if makespan > 0 else float("inf"),
                selected_mtl=selected,
                probe_fraction=instrumented.probe_task_time_fraction(),
            )
        )
    return ComparisonResult(
        program_name=program.name,
        machine_name=target.name,
        baseline_makespan=baseline,
        outcomes=tuple(outcomes),
    )


def paper_policy_suite(
    machine: Optional[Machine] = None,
    window_pairs: int = 16,
) -> Dict[str, Callable[[], SchedulingPolicy]]:
    """The three policies of Figure 14, keyed by the paper's names.

    ``Offline Exhaustive Search`` is realised as the best static MTL
    found by an offline search at comparison time — see
    :func:`offline_best_static_factory`.
    """
    target = machine if machine is not None else i7_860()
    n = target.context_count
    return {
        "Dynamic Throttling": lambda: DynamicThrottlingPolicy(
            context_count=n, window_pairs=window_pairs
        ),
        "Online Exhaustive Search": lambda: OnlineExhaustivePolicy(
            context_count=n, window_pairs=window_pairs
        ),
    }


def offline_best_static_factory(
    program: StreamProgram, machine: Optional[Machine] = None
) -> Callable[[], SchedulingPolicy]:
    """Factory for the Offline Exhaustive Search policy of a program.

    Runs the offline search once (the "off-line runs" of Section V)
    and returns a factory producing the winning static policy.
    """
    outcome = offline_exhaustive_search(program, machine=machine)
    best = outcome.best_mtl
    return lambda: FixedMtlPolicy(best, name="offline-exhaustive")
