"""Experiment harness: policy comparison on one workload.

Every evaluation figure in the paper reports speedups of one or more
policies over the conventional (interference-oblivious) schedule on a
given machine.  :func:`compare_policies` packages that protocol —
including the 20-run/middle-10 noise discipline when requested — and
returns a tidy result the benchmarks and examples format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from typing import Any, List, Mapping

from repro.core.offline import offline_exhaustive_search
from repro.core.policies import OnlineExhaustivePolicy
from repro.core.registry import policy_entry, policy_names
from repro.core.throttle import DynamicThrottlingPolicy
from repro.errors import MeasurementError
from repro.runtime.faults import PointFailure
from repro.runtime.measurement import middle_mean, measure_makespan
from repro.runtime.parallel import PointResult, SweepExecutor, SweepPoint
from repro.sim.machine import Machine, i7_860
from repro.sim.noise import noise_for_seed
from repro.sim.scheduler import FixedMtlPolicy, SchedulingPolicy, conventional_policy
from repro.sim.simulator import Simulator
from repro.stream.program import StreamProgram

__all__ = [
    "PolicyOutcome",
    "ComparisonResult",
    "all_policy_specs",
    "compare_policies",
    "compare_policies_grid",
    "paper_policy_suite",
    "paper_policy_specs",
]

#: Seed of the single instrumented run that provides MTL selection and
#: probe accounting when makespans come from the repeated-run protocol.
INSTRUMENT_SEED = 997


@dataclass(frozen=True)
class PolicyOutcome:
    """One policy's measured performance on one workload.

    ``stats`` carries the policy plugin's registered-counter snapshot
    from the instrumented run (``windows_closed``, blacklist sizes,
    …) as sorted ``(stat, value)`` pairs — the same counters the
    executor emits as ``policy_stat`` telemetry — or ``None`` for
    policies that expose no counters (e.g. plain static policies).
    """

    policy_name: str
    makespan: float
    speedup: float
    selected_mtl: Optional[int]
    probe_fraction: float
    stats: Optional[Tuple[Tuple[str, float], ...]] = None


@dataclass(frozen=True)
class ComparisonResult:
    """All policies' outcomes on one workload/machine combination.

    ``failures`` records sweep points that exhausted the executor's
    retries (grid path only); the affected policies are absent from
    ``outcomes`` rather than aborting the comparison.  Empty on a
    healthy run.
    """

    program_name: str
    machine_name: str
    baseline_makespan: float
    outcomes: Tuple[PolicyOutcome, ...]
    failures: Tuple[PointFailure, ...] = ()

    def outcome(self, policy_name: str) -> PolicyOutcome:
        for entry in self.outcomes:
            if entry.policy_name == policy_name:
                return entry
        raise MeasurementError(
            f"no outcome for policy {policy_name!r}; have "
            f"{[o.policy_name for o in self.outcomes]}"
        )

    def speedup(self, policy_name: str) -> float:
        return self.outcome(policy_name).speedup


def compare_policies(
    program: StreamProgram,
    policies: Dict[str, Callable[[], SchedulingPolicy]],
    machine: Optional[Machine] = None,
    repeated_runs: int = 0,
) -> ComparisonResult:
    """Measure each policy's speedup over the conventional schedule.

    Args:
        program: Workload under test.
        policies: Name to fresh-policy factory.
        machine: Target machine (defaults to the 1-DIMM i7-860).
        repeated_runs: 0 for a single noise-free run per policy
            (deterministic, used in tests); otherwise the number of
            noisy runs fed to the middle-10 protocol (20 in the paper).
    """
    target = machine if machine is not None else i7_860()

    def measured_makespan(factory: Callable[[], SchedulingPolicy]) -> float:
        if repeated_runs <= 0:
            return Simulator(target).run(program, factory()).makespan
        return measure_makespan(
            program, factory, machine=target, runs=repeated_runs
        ).value

    baseline = measured_makespan(lambda: conventional_policy(target.context_count))

    # The instrumented run (MTL selection, probe accounting) sees the
    # same kind of environment the measured runs do: noisy when the
    # repeated-run protocol is in force, noise-free otherwise.
    instrument_noise = (
        noise_for_seed(INSTRUMENT_SEED) if repeated_runs > 0 else None
    )

    outcomes = []
    for name, factory in policies.items():
        # One instrumented run provides MTL selection and probe
        # accounting even when the makespan comes from repeated runs.
        instrumented_policy = factory()
        instrumented = Simulator(target, noise=instrument_noise).run(
            program, instrumented_policy
        )
        makespan = measured_makespan(factory)
        try:
            selected: Optional[int] = instrumented.dominant_mtl()
        except MeasurementError:
            selected = None
        snapshot = getattr(instrumented_policy, "stats_snapshot", None)
        outcomes.append(
            PolicyOutcome(
                policy_name=name,
                makespan=makespan,
                speedup=baseline / makespan if makespan > 0 else float("inf"),
                selected_mtl=selected,
                probe_fraction=instrumented.probe_task_time_fraction(),
                stats=(
                    tuple(sorted(snapshot().items()))
                    if callable(snapshot)
                    else None
                ),
            )
        )
    return ComparisonResult(
        program_name=program.name,
        machine_name=target.name,
        baseline_makespan=baseline,
        outcomes=tuple(outcomes),
    )


def compare_policies_grid(
    workload: Mapping[str, Any],
    policies: Dict[str, Mapping[str, Any]],
    machine: Optional[Mapping[str, Any]] = None,
    repeated_runs: int = 0,
    base_seed: int = 0,
    executor: Optional[SweepExecutor] = None,
) -> ComparisonResult:
    """The declarative, executor-backed twin of :func:`compare_policies`.

    Every (policy, run) pair — including the conventional baseline's —
    becomes one sweep point, submitted as a single batch so a parallel
    executor overlaps policies and repeated runs freely and a cached
    one replays them for free.  Semantics mirror
    :func:`compare_policies` exactly: noise-free single runs when
    ``repeated_runs <= 0``, otherwise the 20-run/middle-10 protocol
    with per-run seeds ``base_seed + run_index`` plus one instrumented
    run per policy at :data:`INSTRUMENT_SEED` for MTL selection and
    probe accounting.

    Args:
        workload: Workload spec (:mod:`repro.runtime.parallel`).
        policies: Name to policy spec; the ``offline`` kind is allowed
            and measures the best static MTL found by exhaustive
            search.
        machine: Machine spec (defaults to the 1-DIMM i7-860).
        repeated_runs: As in :func:`compare_policies`.
        base_seed: First noise seed of the repeated-run protocol.
        executor: Defaults to a serial, uncached executor.
    """
    machine_spec = machine if machine is not None else {"preset": "i7_860"}
    runner = executor if executor is not None else SweepExecutor(jobs=1)
    baseline_spec: Mapping[str, Any] = {"kind": "conventional"}
    seeds: List[Optional[int]] = (
        [base_seed + run for run in range(repeated_runs)]
        if repeated_runs > 0
        else [None]
    )

    points: List[SweepPoint] = []
    for name, spec in [("conventional", baseline_spec)] + list(policies.items()):
        for seed in seeds:
            points.append(
                SweepPoint(
                    workload=workload,
                    machine=machine_spec,
                    policy=spec,
                    seed=seed,
                    label=f"{name}/measure",
                )
            )
        if repeated_runs > 0 and name != "conventional":
            points.append(
                SweepPoint(
                    workload=workload,
                    machine=machine_spec,
                    policy=spec,
                    seed=INSTRUMENT_SEED,
                    label=f"{name}/instrument",
                )
            )
    results = runner.run(points)
    failures = tuple(r for r in results if isinstance(r, PointFailure))

    runs_per_policy = len(seeds)
    cursor = 0

    def take_measured() -> Optional[float]:
        """Mean measured makespan, or ``None`` if any run failed."""
        nonlocal cursor
        window = results[cursor : cursor + runs_per_policy]
        cursor += runs_per_policy
        if any(isinstance(r, PointFailure) for r in window):
            return None
        makespans = [r.makespan for r in window]
        if repeated_runs > 0:
            return middle_mean(makespans)
        return makespans[0]

    def take_instrumented() -> Optional[PointResult]:
        nonlocal cursor
        # Noise-free mode: the measured run doubles as the instrumented
        # one (same environment, same numbers), exactly as in
        # :func:`compare_policies`.
        if repeated_runs > 0:
            instrumented = results[cursor]
            cursor += 1
        else:
            instrumented = results[cursor - 1]
        if isinstance(instrumented, PointFailure):
            return None
        return instrumented

    baseline = take_measured()
    if baseline is None:
        failed = [f.label for f in failures if f.label.startswith("conventional/")]
        raise MeasurementError(
            "the conventional baseline failed after retries "
            f"({failed}); no speedup can be computed"
        )
    outcomes = []
    for name in policies:
        makespan = take_measured()
        instrumented = take_instrumented()
        if makespan is None or instrumented is None:
            # Degraded policy: its points are in ``failures``; the
            # remaining policies' numbers stay bit-identical.
            continue
        outcomes.append(
            PolicyOutcome(
                policy_name=name,
                makespan=makespan,
                speedup=baseline / makespan if makespan > 0 else float("inf"),
                selected_mtl=instrumented.selected_mtl,
                probe_fraction=instrumented.probe_fraction,
                stats=(
                    tuple(sorted(instrumented.policy_stats.items()))
                    if instrumented.policy_stats is not None
                    else None
                ),
            )
        )
    first = next(r for r in results if isinstance(r, PointResult))
    return ComparisonResult(
        program_name=first.workload,
        machine_name=first.machine,
        baseline_makespan=baseline,
        outcomes=tuple(outcomes),
        failures=failures,
    )


def paper_policy_specs(window_pairs: int = 16) -> Dict[str, Mapping[str, Any]]:
    """Declarative specs for the three policies of Figure 14."""
    return {
        "Dynamic Throttling": {"kind": "dynamic", "window_pairs": window_pairs},
        "Online Exhaustive Search": {"kind": "online", "window_pairs": window_pairs},
        "Offline Exhaustive Search": {"kind": "offline"},
    }


#: Grid-time values for registry parameters that have no constructor
#: default (a full-registry comparison must be buildable unattended).
_REQUIRED_PARAM_DEFAULTS: Dict[str, Dict[str, Any]] = {
    "static": {"mtl": 2},
}


def all_policy_specs(window_pairs: int = 16) -> Dict[str, Mapping[str, Any]]:
    """One declarative spec per registered policy, keyed by name.

    The cross-policy comparison grid: every entry of
    :func:`repro.core.registry.policy_names` becomes a runnable spec.
    Policies exposing a ``window_pairs`` parameter get the shared
    value (so the comparison monitors with one W everywhere);
    parameters without a constructor default are filled from
    :data:`_REQUIRED_PARAM_DEFAULTS`.
    """
    specs: Dict[str, Mapping[str, Any]] = {}
    for name in policy_names():
        entry = policy_entry(name)
        spec: Dict[str, Any] = {"kind": name}
        if entry.param("window_pairs") is not None:
            spec["window_pairs"] = window_pairs
        for param in entry.params:
            if param.default is None and param.name not in spec:
                spec[param.name] = _REQUIRED_PARAM_DEFAULTS[name][param.name]
        specs[name] = spec
    return specs


def paper_policy_suite(
    machine: Optional[Machine] = None,
    window_pairs: int = 16,
) -> Dict[str, Callable[[], SchedulingPolicy]]:
    """The three policies of Figure 14, keyed by the paper's names.

    ``Offline Exhaustive Search`` is realised as the best static MTL
    found by an offline search at comparison time — see
    :func:`offline_best_static_factory`.
    """
    target = machine if machine is not None else i7_860()
    n = target.context_count
    return {
        "Dynamic Throttling": lambda: DynamicThrottlingPolicy(
            context_count=n, window_pairs=window_pairs
        ),
        "Online Exhaustive Search": lambda: OnlineExhaustivePolicy(
            context_count=n, window_pairs=window_pairs
        ),
    }


def offline_best_static_factory(
    program: StreamProgram, machine: Optional[Machine] = None
) -> Callable[[], SchedulingPolicy]:
    """Factory for the Offline Exhaustive Search policy of a program.

    Runs the offline search once (the "off-line runs" of Section V)
    and returns a factory producing the winning static policy.
    """
    outcome = offline_exhaustive_search(program, machine=machine)
    best = outcome.best_mtl
    return lambda: FixedMtlPolicy(best, name="offline-exhaustive")
