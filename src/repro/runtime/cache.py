"""Content-addressed on-disk cache for sweep-point results.

A sweep point is fully determined by its declarative description —
``(workload spec, machine spec, policy spec, seed)`` — and the
simulator is deterministic given those (see
:mod:`repro.sim.simulator`), so the result of a point can be addressed
by a stable hash of its description.  :func:`stable_hash` canonicalises
the description to JSON (sorted keys, ``repr``-exact floats) and
SHA-256 hashes it; :class:`ResultCache` maps such keys to JSON payloads
under a two-level directory fan-out (``ab/abcdef....json``) to keep
directories small on large sweeps.

Writes are atomic (temp file + :func:`os.replace`) so a parallel sweep
whose workers race to store the same key never leaves a torn file.  A
corrupt entry — torn write from a killed run, manual edit, wrong
schema version — is **quarantined**: renamed to ``*.corrupt`` next to
its slot (never silently overwritten, so the evidence survives for
forensics), counted in :class:`CacheStats`, reported through the
optional telemetry writer as a ``cache_quarantine`` event, and
reported to the caller as a miss so the point simply re-runs and
re-verifies the slot with a fresh store.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from repro.errors import ConfigurationError
from repro.runtime.telemetry import TelemetryWriter, cache_quarantine_event

__all__ = ["CACHE_SCHEMA_VERSION", "CacheStats", "ResultCache", "stable_hash"]

#: Bump to invalidate every existing cache entry when the simulator's
#: observable behaviour changes (the version participates in the key).
CACHE_SCHEMA_VERSION = 2


def _canonical(value: Any) -> Any:
    """Normalise a value for hashing: dicts sorted, floats exact.

    Floats are rewritten as ``repr`` strings so the canonical form is
    bit-exact (JSON float round-tripping is repr-faithful in Python 3,
    but being explicit keeps the key stable across serialisers), and
    integral floats hash differently from ints on purpose — a spec that
    changes type changes meaning.
    """
    if isinstance(value, dict):
        return {str(k): _canonical(value[k]) for k in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, float):
        return f"f:{value!r}"
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    raise ConfigurationError(
        f"cannot hash value of type {type(value).__name__}: {value!r}; "
        "sweep specs must be built from JSON-compatible scalars"
    )


def stable_hash(description: Dict[str, Any]) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``description``."""
    canonical = json.dumps(_canonical(description), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store/quarantine counters for one cache lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    quarantined: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


@dataclass
class ResultCache:
    """On-disk JSON store keyed by content address.

    Attributes:
        directory: Cache root; created on first store.
        stats: Lookup counters, reset per instance (the *process's*
            view of the cache, not the directory's lifetime history).
        telemetry: Optional JSON-lines sink; quarantines emit one
            ``cache_quarantine`` record each.
    """

    directory: Union[str, pathlib.Path]
    stats: CacheStats = field(default_factory=CacheStats)
    telemetry: Optional[TelemetryWriter] = None

    def __post_init__(self) -> None:
        self.directory = pathlib.Path(self.directory)

    def path_for(self, key: str) -> pathlib.Path:
        """The on-disk slot of ``key`` (whether or not it exists)."""
        if len(key) < 8 or not all(c in "0123456789abcdef" for c in key):
            raise ConfigurationError(f"malformed cache key {key!r}")
        return pathlib.Path(self.directory) / key[:2] / f"{key}.json"

    def _quarantine(self, key: str, path: pathlib.Path, reason: str) -> None:
        """Isolate a corrupt entry as ``*.corrupt`` and count it."""
        self.stats.quarantined += 1
        target = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, target)
        except OSError:
            # Last resort: an entry we can neither rename nor trust
            # must not keep poisoning lookups.
            try:
                path.unlink()
            except OSError:
                pass
        if self.telemetry is not None:
            self.telemetry.emit(
                cache_quarantine_event(key=key, path=str(target), reason=reason)
            )

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the stored payload for ``key``, or ``None`` on miss.

        A corrupt entry (torn write from a killed run, manual edit,
        wrong schema version) is quarantined — renamed to
        ``*.corrupt``, counted, telemetered — and reported as a miss
        so the point simply re-runs and re-verifies the slot.
        """
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except json.JSONDecodeError:
            self.stats.misses += 1
            self._quarantine(key, path, "not valid JSON (torn or truncated write)")
            return None
        except OSError:
            self.stats.misses += 1
            return None
        if not isinstance(payload, dict) or "result" not in payload:
            self.stats.misses += 1
            self._quarantine(key, path, "payload is not a result object")
            return None
        if payload.get("schema") != CACHE_SCHEMA_VERSION:
            self.stats.misses += 1
            self._quarantine(
                key,
                path,
                f"schema version {payload.get('schema')!r} != "
                f"{CACHE_SCHEMA_VERSION}",
            )
            return None
        self.stats.hits += 1
        return payload["result"]

    def put(self, key: str, result: Dict[str, Any], point: Optional[Dict[str, Any]] = None) -> None:
        """Atomically store ``result`` (and optionally the point spec
        that produced it, for debuggability) under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"schema": CACHE_SCHEMA_VERSION, "key": key, "result": result}
        if point is not None:
            payload["point"] = point
        handle = tempfile.NamedTemporaryFile(
            mode="w", dir=path.parent, suffix=".tmp", delete=False
        )
        try:
            with handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(handle.name, path)
        except OSError:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def clear(self) -> int:
        """Delete every entry (quarantined ones included); returns how
        many were removed."""
        root = pathlib.Path(self.directory)
        removed = 0
        if not root.exists():
            return 0
        for pattern in ("*/*.json", "*/*.json.corrupt"):
            for entry in root.glob(pattern):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
