"""Content-addressed on-disk cache for sweep-point results.

A sweep point is fully determined by its declarative description —
``(workload spec, machine spec, policy spec, seed)`` — and the
simulator is deterministic given those (see
:mod:`repro.sim.simulator`), so the result of a point can be addressed
by a stable hash of its description.  :func:`stable_hash` canonicalises
the description to JSON (sorted keys, ``repr``-exact floats) and
SHA-256 hashes it; :class:`ResultCache` maps such keys to JSON payloads
under a two-level directory fan-out (``ab/abcdef....json``) to keep
directories small on large sweeps.

Writes are atomic (temp file + :func:`os.replace`) so a parallel sweep
whose workers race to store the same key never leaves a torn file;
corrupt or unreadable entries are treated as misses and overwritten,
never propagated.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from repro.errors import ConfigurationError

__all__ = ["CACHE_SCHEMA_VERSION", "CacheStats", "ResultCache", "stable_hash"]

#: Bump to invalidate every existing cache entry when the simulator's
#: observable behaviour changes (the version participates in the key).
CACHE_SCHEMA_VERSION = 1


def _canonical(value: Any) -> Any:
    """Normalise a value for hashing: dicts sorted, floats exact.

    Floats are rewritten as ``repr`` strings so the canonical form is
    bit-exact (JSON float round-tripping is repr-faithful in Python 3,
    but being explicit keeps the key stable across serialisers), and
    integral floats hash differently from ints on purpose — a spec that
    changes type changes meaning.
    """
    if isinstance(value, dict):
        return {str(k): _canonical(value[k]) for k in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, float):
        return f"f:{value!r}"
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    raise ConfigurationError(
        f"cannot hash value of type {type(value).__name__}: {value!r}; "
        "sweep specs must be built from JSON-compatible scalars"
    )


def stable_hash(description: Dict[str, Any]) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``description``."""
    canonical = json.dumps(_canonical(description), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache` lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


@dataclass
class ResultCache:
    """On-disk JSON store keyed by content address.

    Attributes:
        directory: Cache root; created on first store.
        stats: Lookup counters, reset per instance (the *process's*
            view of the cache, not the directory's lifetime history).
    """

    directory: Union[str, pathlib.Path]
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.directory = pathlib.Path(self.directory)

    def _path_for(self, key: str) -> pathlib.Path:
        if len(key) < 8 or not all(c in "0123456789abcdef" for c in key):
            raise ConfigurationError(f"malformed cache key {key!r}")
        return pathlib.Path(self.directory) / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the stored payload for ``key``, or ``None`` on miss.

        A corrupt entry (torn write from a killed run, manual edit) is
        deleted and reported as a miss so the point simply re-runs.
        """
        path = self._path_for(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if not isinstance(payload, dict) or "result" not in payload:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload["result"]

    def put(self, key: str, result: Dict[str, Any], point: Optional[Dict[str, Any]] = None) -> None:
        """Atomically store ``result`` (and optionally the point spec
        that produced it, for debuggability) under ``key``."""
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"schema": CACHE_SCHEMA_VERSION, "key": key, "result": result}
        if point is not None:
            payload["point"] = point
        handle = tempfile.NamedTemporaryFile(
            mode="w", dir=path.parent, suffix=".tmp", delete=False
        )
        try:
            with handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(handle.name, path)
        except OSError:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        root = pathlib.Path(self.directory)
        removed = 0
        if not root.exists():
            return 0
        for entry in root.glob("*/*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed
