"""The repeated-run measurement protocol (Section V of the paper).

"To further reduce the influence of system noises, we run each
workload 20 times in sequence and average the results of the middle 10
runs (for corner case elimination)."  :func:`middle_mean` implements
the trimmed average; :func:`measure_makespan` implements the protocol
end to end with independently seeded noise per run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import MeasurementError
from repro.sim.machine import Machine, i7_860
from repro.sim.noise import NoiseModel, noise_for_seed
from repro.sim.scheduler import SchedulingPolicy
from repro.sim.simulator import Simulator
from repro.stream.program import StreamProgram

__all__ = ["middle_mean", "RepeatedMeasurement", "measure_makespan"]


def middle_mean(values: List[float], keep: int = 10) -> float:
    """Mean of the middle ``keep`` values after sorting.

    With fewer than ``keep`` values the plain mean is returned (the
    protocol degenerates gracefully for quick runs).
    """
    if not values:
        raise MeasurementError("middle_mean of an empty sample")
    if keep < 1:
        raise MeasurementError(f"keep must be >= 1, got {keep}")
    ordered = sorted(values)
    if len(ordered) <= keep:
        return sum(ordered) / len(ordered)
    drop = (len(ordered) - keep) // 2
    middle = ordered[drop : drop + keep]
    return sum(middle) / len(middle)


@dataclass(frozen=True)
class RepeatedMeasurement:
    """Outcome of a repeated-run measurement.

    Attributes:
        makespans: Every run's makespan, in run order.
        value: The middle-mean makespan (the reported number).
    """

    makespans: Tuple[float, ...]
    value: float

    @property
    def runs(self) -> int:
        return len(self.makespans)

    @property
    def spread(self) -> float:
        """Relative spread ``(max - min) / value`` across runs."""
        if self.value == 0:
            return 0.0
        return (max(self.makespans) - min(self.makespans)) / self.value


def measure_makespan(
    program: StreamProgram,
    policy_factory: Callable[[], SchedulingPolicy],
    machine: Optional[Machine] = None,
    runs: int = 20,
    keep: int = 10,
    base_seed: int = 0,
    noise_factory: Optional[Callable[[int], NoiseModel]] = None,
) -> RepeatedMeasurement:
    """Run the paper's 20-run / middle-10 protocol.

    Args:
        program: Workload to measure.
        policy_factory: Builds a *fresh* policy per run (dynamic
            policies are stateful and must not be reused).
        machine: Target machine (defaults to the 1-DIMM i7-860).
        runs: Sequential runs (20 in the paper).
        keep: Middle runs averaged (10 in the paper).
        base_seed: Noise seeds are ``base_seed + run_index``.
        noise_factory: Maps a seed to a noise model; defaults to the
            canonical :func:`~repro.sim.noise.noise_for_seed` mapping
            shared with the parallel sweep executor, so a seed means
            the same noise stream on every execution path.
    """
    if runs < 1:
        raise MeasurementError(f"runs must be >= 1, got {runs}")
    target = machine if machine is not None else i7_860()
    make_noise = noise_factory if noise_factory is not None else noise_for_seed
    makespans: List[float] = []
    for run_index in range(runs):
        simulator = Simulator(target, noise=make_noise(base_seed + run_index))
        result = simulator.run(program, policy_factory())
        makespans.append(result.makespan)
    return RepeatedMeasurement(
        makespans=tuple(makespans), value=middle_mean(makespans, keep=keep)
    )
