"""Performance microbenchmarks for the simulation engine.

``python -m repro perfbench`` measures four layers and writes
``BENCH_sim.json`` at the repository root (see ``docs/performance.md``
for how to read it):

* **equilibrium** — solves/sec of :func:`effective_concurrency` on a
  pure memory population, three ways: the damped iteration
  (``fast_path=False``, byte-for-byte the seed algorithm), the pure
  closed-form fast path, and the memoized
  :class:`~repro.memory.equilibrium.EquilibriumSolver` hit path the
  engine actually rides.  The iterative numbers double as the honest
  "before", since that code path is unchanged.  The headline
  ``mixed_solves_per_sec`` drives a *stream* of distinct mixed
  populations (different full memo keys, shared canonical projection)
  through fresh solvers — the access pattern a simulated run produces
  as pure-CPU tasks come and go around a stable memory population —
  so it measures the warm-started solver path end to end: one cold
  damped iteration amortized over its warm-started siblings.
* **engine** — end-to-end simulated events/sec of one Figure 13 point
  (offline search, four static-MTL runs), plus the snapshot/equilibrium
  cache hit rates of a direct simulator run (emitted as
  ``snapshot_cache`` / ``equilibrium_warm`` telemetry when
  ``--telemetry`` is given).
* **fig13** — wall-clock of the Figure 13 synthetic sweep at
  ``jobs=1`` (``--quick`` runs a 16-ratio subset; per-point wall makes
  the two comparable).
* **fig14** — wall-clock of one Figure 14 point (``dft`` under the
  dynamic policy).

Every section repeats its unit of work and reports the **median** rep
(robust to one slow rep on a noisy shared machine, where a mean is
not), persisting the full rep spread — ``{median, min, max}`` per
metric — under the section's ``"spread"`` key.

Numbers for the seed engine live in ``benchmarks/perf/baseline.json``
(``"seed"`` block); the report derives before/after speedups from it.
``--check`` compares measured engine events/sec against the baseline's
``"current"`` block and fails on a >30 % regression, and additionally
enforces every entry of the baseline's ``"floors"`` block (seed-anchored
hard minimums for the schema-2 headline metrics) — the CI tripwire
that protects the optimization.  ``--profile`` wraps the engine
benchmark in :mod:`cProfile` and reports the top functions by
cumulative time (also as ``profile`` telemetry events).
"""

from __future__ import annotations

import cProfile
import gc
import json
import pathlib
import pstats
import statistics
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import MeasurementError
from repro.memory.equilibrium import (
    EquilibriumSolver,
    MemoryDemand,
    demand_signature,
    effective_concurrency,
)
from repro.runtime.parallel import (
    SweepExecutor,
    SweepPoint,
    build_workload_from_spec,
    run_point,
)
from repro.runtime.telemetry import (
    TelemetryWriter,
    equilibrium_warm_event,
    profile_event,
    snapshot_cache_event,
)
from repro.sim.machine import i7_860
from repro.sim.scheduler import FixedMtlPolicy
from repro.sim.simulator import Simulator
from repro.units import mebibytes

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_OUTPUT_PATH",
    "run_perfbench",
    "check_against_baseline",
    "format_report",
]

BENCH_SCHEMA_VERSION = 2

DEFAULT_OUTPUT_PATH = "BENCH_sim.json"
DEFAULT_BASELINE_PATH = "benchmarks/perf/baseline.json"

#: Allowed events/sec regression before ``--check`` fails (the CI gate).
REGRESSION_TOLERANCE = 0.30

#: Where each checkable ``floors`` metric lives in the report:
#: ``floors`` key -> (section, metric).
_FLOOR_METRICS: Dict[str, Tuple[str, str]] = {
    "engine_events_per_sec": ("engine", "events_per_sec"),
    "equilibrium_mixed_solves_per_sec": ("equilibrium", "mixed_solves_per_sec"),
    "warm_start_hit_rate": ("equilibrium", "warm_start_hit_rate"),
}

#: The fig13 grid (mirrors benchmarks/test_fig13_synthetic_sweep.py).
_FIG13_RATIOS = [round(0.05 * i, 2) for i in range(1, 81)]
_FIG13_PAIRS = 96
_FIG13_FOOTPRINT_MB = 0.5
_I7_LLC = {"capacity_bytes": mebibytes(8), "sharers": 4}

#: Pure population size for the equilibrium microbenchmark.  Large
#: enough (64 contexts — two POWER7 sockets of 8 cores x 4 SMT) that
#: the iterative path's per-solve cost is dominated by real work, not
#: loop setup.
_EQ_POPULATION = 64

#: Distinct populations per warm-start stream (one cold solve
#: amortized over ``_EQ_STREAM - 1`` warm-started siblings).
_EQ_STREAM = 32


def _fig13_point(ratio: float) -> SweepPoint:
    return SweepPoint(
        workload={
            "kind": "synthetic",
            "ratio": ratio,
            "footprint_bytes": mebibytes(_FIG13_FOOTPRINT_MB),
            "pairs": _FIG13_PAIRS,
            "llc": _I7_LLC,
        },
        policy={"kind": "offline"},
        label=f"perfbench/fig13/r={ratio:.2f}",
    )


def _rep_seconds(fn: Callable[[], Any], reps: int) -> List[float]:
    """Wall-clock seconds of each of ``reps`` calls of ``fn``."""
    times = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return times


def _spread(values: List[float]) -> Dict[str, float]:
    """``{median, min, max}`` of one per-rep metric across reps."""
    return {
        "median": statistics.median(values),
        "min": min(values),
        "max": max(values),
    }


def _rate_reps(fn: Callable[[], Any], inner: int, outer: int) -> List[float]:
    """Per-rep rates (calls/sec) for ``outer`` reps of ``inner`` calls."""

    def batch() -> None:
        for _ in range(inner):
            fn()

    return [inner / seconds for seconds in _rep_seconds(batch, outer)]


def _bench_equilibrium(quick: bool) -> Dict[str, Any]:
    """Solves/sec of the equilibrium paths on fixed populations."""
    machine = i7_860()
    latency_fn = machine.memory.request_latency
    pure = [MemoryDemand(0.0, 1.0) for _ in range(_EQ_POPULATION)]
    mixed = [
        MemoryDemand(0.0 if i % 2 else 1e-3, 0.5 + 0.01 * i)
        for i in range(_EQ_POPULATION)
    ]
    outer = 4 if quick else 10
    inner = 500 if quick else 2_000
    mixed_inner = 125 if quick else 200

    iterative = _rate_reps(
        lambda: effective_concurrency(pure, latency_fn, fast_path=False),
        inner,
        outer,
    )
    fast = _rate_reps(
        lambda: effective_concurrency(pure, latency_fn), inner, outer
    )

    solver = EquilibriumSolver(latency_fn)
    key = demand_signature(pure)
    solver.solve(pure, key=key)  # warm the memo: measure the hit path
    memoized = _rate_reps(lambda: solver.solve(pure, key=key), inner, outer)

    mixed_iterative = _rate_reps(
        lambda: effective_concurrency(mixed, latency_fn, fast_path=False),
        mixed_inner,
        outer,
    )
    mixed_key = demand_signature(mixed)
    solver.solve(mixed, key=mixed_key)
    mixed_memoized = _rate_reps(
        lambda: solver.solve(mixed, key=mixed_key), mixed_inner, outer
    )

    # The warm-start stream: _EQ_STREAM distinct full keys sharing one
    # canonical (memory-demand) projection.  Half the population is a
    # fixed mixed memory sub-population; the other half is pure-CPU
    # demand whose magnitude varies per stream member, so every member
    # misses the full-key memo but (after the first) warm-hits the
    # canonical one.  Fresh solver per pass — stream members must stay
    # memo misses, or the benchmark degrades into the hit path.
    memory_half = [
        MemoryDemand(1e-3 if i % 2 else 0.0, 0.5 + 0.01 * i)
        for i in range(_EQ_POPULATION // 2)
    ]
    stream: List[Tuple[bytes, List[MemoryDemand]]] = []
    for member in range(_EQ_STREAM):
        cpu_half = [
            MemoryDemand(1e-3 + 1e-6 * (member * 37 + i), 0.0)
            for i in range(_EQ_POPULATION // 2)
        ]
        population = [
            demand
            for pair in zip(memory_half, cpu_half)
            for demand in pair
        ]
        stream.append((demand_signature(population), population))

    stream_passes = 10 if quick else 40
    warm_info: Dict[str, int] = {}

    def run_stream() -> None:
        for _ in range(stream_passes):
            fresh = EquilibriumSolver(latency_fn)
            for signature, population in stream:
                fresh.solve(population, key=signature)
            warm_info.update(fresh.cache_info())

    solves_per_rep = stream_passes * _EQ_STREAM
    mixed_stream = [
        solves_per_rep / seconds
        for seconds in _rep_seconds(run_stream, outer)
    ]
    solves = warm_info["warm_hits"] + warm_info["cold_solves"]
    hit_rate = warm_info["warm_hits"] / solves if solves else 0.0

    rates = {
        "pure_iterative_solves_per_sec": iterative,
        "pure_fast_path_solves_per_sec": fast,
        "pure_memoized_solves_per_sec": memoized,
        "mixed_iterative_solves_per_sec": mixed_iterative,
        "mixed_memoized_solves_per_sec": mixed_memoized,
        "mixed_solves_per_sec": mixed_stream,
    }
    report: Dict[str, Any] = {
        "population": _EQ_POPULATION,
        "stream_length": _EQ_STREAM,
    }
    for name, values in rates.items():
        report[name] = statistics.median(values)
    report["pure_fast_path_speedup"] = (
        report["pure_fast_path_solves_per_sec"]
        / report["pure_iterative_solves_per_sec"]
    )
    report["pure_memoized_speedup"] = (
        report["pure_memoized_solves_per_sec"]
        / report["pure_iterative_solves_per_sec"]
    )
    report["mixed_memoized_speedup"] = (
        report["mixed_memoized_solves_per_sec"]
        / report["mixed_iterative_solves_per_sec"]
    )
    report["mixed_stream_speedup"] = (
        report["mixed_solves_per_sec"]
        / report["mixed_iterative_solves_per_sec"]
    )
    report["warm_start_hit_rate"] = hit_rate
    report["warm_cache"] = dict(warm_info)
    report["spread"] = {name: _spread(values) for name, values in rates.items()}
    return report


def _bench_engine(quick: bool) -> Dict[str, Any]:
    """End-to-end events/sec of one fig13 point, plus cache hit rates."""
    point = _fig13_point(1.0)
    reps = 5 if quick else 20
    events_per_rep = run_point(point).sim_events  # deterministic per point
    rep_walls = _rep_seconds(lambda: run_point(point), reps)
    rep_rates = [events_per_rep / wall for wall in rep_walls]

    # Direct run of the same workload for cache-effectiveness stats
    # (run_point hides its simulator, so instrument one explicitly).
    machine = i7_860()
    program = build_workload_from_spec(dict(point.workload))
    graph = program.to_task_graph()
    simulator = Simulator(machine)
    for mtl in range(1, machine.context_count + 1):
        simulator.run_graph(graph, FixedMtlPolicy(mtl), program.name)
    snapshot_stats = simulator.rate_calculator.cache_info()
    eq_stats = machine.memory.equilibrium_cache_info()

    return {
        "reps": reps,
        "wall_seconds": sum(rep_walls),
        "events": events_per_rep * reps,
        "events_per_rep": events_per_rep,
        "events_per_sec": statistics.median(rep_rates),
        "spread": {
            "events_per_sec": _spread(rep_rates),
            "rep_wall_seconds": _spread(rep_walls),
        },
        "snapshot_cache": snapshot_stats,
        "equilibrium_cache": eq_stats,
    }


def _bench_fig13(quick: bool) -> Dict[str, Any]:
    """Wall-clock of the fig13 sweep at jobs=1 (quick: 16-ratio subset)."""
    ratios = _FIG13_RATIOS[4::5] if quick else _FIG13_RATIOS
    points = [_fig13_point(ratio) for ratio in ratios]
    reps = 3
    events = 0

    def sweep() -> None:
        nonlocal events
        executor = SweepExecutor(jobs=1)
        events = sum(result.sim_events for result in executor.run(points))

    rep_walls = _rep_seconds(sweep, reps)
    wall = statistics.median(rep_walls)
    return {
        "points": len(points),
        "pairs": _FIG13_PAIRS,
        "footprint_mb": _FIG13_FOOTPRINT_MB,
        "reps": reps,
        "wall_seconds": wall,
        "wall_seconds_per_point": wall / len(points),
        "events": events,
        "events_per_sec": events / wall,
        "spread": {"wall_seconds": _spread(rep_walls)},
    }


def _bench_fig14(quick: bool) -> Dict[str, Any]:
    """Wall-clock of one fig14 point: dft under the dynamic policy."""
    point = SweepPoint(
        workload={"kind": "registry", "name": "dft"},
        policy={"kind": "dynamic"},
        label="perfbench/fig14/dft-dynamic",
    )
    reps = 10 if quick else 50
    events = run_point(point).sim_events
    rep_walls = _rep_seconds(lambda: run_point(point), reps)
    return {
        "reps": reps,
        "wall_seconds_per_point": statistics.median(rep_walls),
        "events": events,
        "spread": {"wall_seconds_per_point": _spread(rep_walls)},
    }


def _profile_engine(quick: bool, top_n: int = 10) -> List[Dict[str, Any]]:
    """cProfile the engine benchmark; top ``top_n`` by cumulative time."""
    profiler = cProfile.Profile()
    profiler.enable()
    _bench_engine(quick)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    rows: List[Dict[str, Any]] = []
    for rank, func in enumerate(stats.fcn_list[:top_n], start=1):
        cc, nc, tt, ct, _callers = stats.stats[func]
        filename, line, name = func
        location = pathlib.Path(filename).name if filename != "~" else "~"
        rows.append(
            {
                "rank": rank,
                "function": f"{location}:{line}({name})",
                "calls": nc,
                "cumulative_seconds": ct,
                "total_seconds": tt,
            }
        )
    return rows


def _load_baseline(path: Optional[str]) -> Optional[Dict[str, Any]]:
    if path is None:
        return None
    baseline_path = pathlib.Path(path)
    if not baseline_path.exists():
        return None
    try:
        payload = json.loads(baseline_path.read_text())
    except json.JSONDecodeError as exc:
        raise MeasurementError(
            f"perf baseline {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise MeasurementError(f"perf baseline {path} must be a JSON object")
    return payload


def _speedups(
    report: Dict[str, Any], baseline: Optional[Dict[str, Any]]
) -> Dict[str, Any]:
    """Before/after ratios against the baseline's seed measurements."""
    speedups: Dict[str, Any] = {
        # Same-run, same-hardware ratios: memo hit / warm-started
        # stream vs the unchanged iterative algorithm.
        "equilibrium_pure_memoized_vs_iterative": report["equilibrium"][
            "pure_memoized_speedup"
        ],
        "equilibrium_mixed_stream_vs_iterative": report["equilibrium"][
            "mixed_stream_speedup"
        ],
    }
    seed = (baseline or {}).get("seed")
    if isinstance(seed, dict):
        per_point = seed.get("fig13_wall_seconds_per_point")
        if per_point:
            speedups["fig13_wall_vs_seed"] = (
                per_point / report["fig13"]["wall_seconds_per_point"]
            )
        seed_eps = seed.get("engine_events_per_sec")
        if seed_eps:
            speedups["engine_events_per_sec_vs_seed"] = (
                report["engine"]["events_per_sec"] / seed_eps
            )
        seed_mixed = seed.get("equilibrium_mixed_solves_per_sec")
        if seed_mixed:
            speedups["equilibrium_mixed_vs_seed"] = (
                report["equilibrium"]["mixed_solves_per_sec"] / seed_mixed
            )
        seed_fig14 = seed.get("fig14_point_wall_seconds")
        if seed_fig14:
            speedups["fig14_point_vs_seed"] = (
                seed_fig14 / report["fig14"]["wall_seconds_per_point"]
            )
    return speedups


def check_against_baseline(
    report: Dict[str, Any], baseline: Optional[Dict[str, Any]]
) -> List[str]:
    """Regression check for CI; returns failure messages (empty = pass).

    Compares measured engine events/sec against the baseline's
    ``current`` block with :data:`REGRESSION_TOLERANCE` headroom, then
    enforces every entry of the baseline's optional ``floors`` block
    as a hard minimum (no extra tolerance — floors are already set
    conservatively; see :data:`_FLOOR_METRICS` for where each metric
    is read from the report).  Schema-1 baselines have no ``floors``
    block and get exactly the old behaviour.
    """
    if baseline is None:
        return ["no baseline file found; cannot check for regressions"]
    current = baseline.get("current")
    if not isinstance(current, dict) or not current.get("engine_events_per_sec"):
        return ["baseline has no current.engine_events_per_sec to check against"]
    failures: List[str] = []
    floor = (1.0 - REGRESSION_TOLERANCE) * float(
        current["engine_events_per_sec"]
    )
    measured = report["engine"]["events_per_sec"]
    if measured < floor:
        failures.append(
            f"engine events/sec regressed: measured {measured:.0f} < "
            f"{floor:.0f} (70% of baseline "
            f"{float(current['engine_events_per_sec']):.0f})"
        )
    floors = baseline.get("floors")
    if isinstance(floors, dict):
        for name in sorted(floors):
            location = _FLOOR_METRICS.get(name)
            if location is None:
                failures.append(
                    f"baseline floors name unknown metric {name!r}; "
                    "checkable: " + ", ".join(sorted(_FLOOR_METRICS))
                )
                continue
            section, metric = location
            value = report[section][metric]
            minimum = float(floors[name])
            if value < minimum:
                failures.append(
                    f"{name} below floor: measured {value:.4g} < "
                    f"floor {minimum:.4g}"
                )
    return failures


def run_perfbench(
    quick: bool = False,
    profile: bool = False,
    baseline_path: Optional[str] = DEFAULT_BASELINE_PATH,
    telemetry: Optional[TelemetryWriter] = None,
) -> Dict[str, Any]:
    """Run every benchmark section and assemble the report dict."""
    baseline = _load_baseline(baseline_path)
    report: Dict[str, Any] = {"schema": BENCH_SCHEMA_VERSION, "quick": quick}
    # Collect between sections so one section's garbage does not tax the
    # next one's measurement (gen-2 scans walk everything still alive).
    for name, bench in (
        ("fig13", _bench_fig13),
        ("fig14", _bench_fig14),
        ("engine", _bench_engine),
        ("equilibrium", _bench_equilibrium),
    ):
        gc.collect()
        report[name] = bench(quick)
    if profile:
        report["profile"] = _profile_engine(quick)
    if baseline is not None:
        report["baseline"] = baseline
    report["speedups"] = _speedups(report, baseline)

    if telemetry is not None:
        engine = report["engine"]
        for cache_name, stats in (
            ("rate_snapshot", engine["snapshot_cache"]),
            ("equilibrium", engine["equilibrium_cache"]),
        ):
            telemetry.emit(
                snapshot_cache_event(
                    cache=cache_name,
                    label="perfbench/engine",
                    hits=stats["hits"],
                    misses=stats["misses"],
                    entries=stats["entries"],
                )
            )
        for label, warm in (
            ("perfbench/engine", engine["equilibrium_cache"]),
            ("perfbench/equilibrium", report["equilibrium"]["warm_cache"]),
        ):
            telemetry.emit(
                equilibrium_warm_event(
                    label=label,
                    warm_hits=warm["warm_hits"],
                    cold_solves=warm["cold_solves"],
                    iterations_saved=warm["iterations_saved"],
                    warm_entries=warm["warm_entries"],
                )
            )
        for row in report.get("profile", []):
            telemetry.emit(
                profile_event(
                    label="perfbench/engine",
                    function=row["function"],
                    rank=row["rank"],
                    calls=row["calls"],
                    cumulative_seconds=row["cumulative_seconds"],
                    total_seconds=row["total_seconds"],
                )
            )
    return report


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of a perfbench report."""
    eq = report["equilibrium"]
    engine = report["engine"]
    fig13 = report["fig13"]
    fig14 = report["fig14"]
    lines = [
        f"perfbench ({'quick' if report['quick'] else 'full'} mode, "
        "median of reps)",
        "",
        f"equilibrium (population of {eq['population']}):",
        f"  iterative    {eq['pure_iterative_solves_per_sec']:>12,.0f} solves/s",
        f"  fast path    {eq['pure_fast_path_solves_per_sec']:>12,.0f} solves/s"
        f"  ({eq['pure_fast_path_speedup']:.1f}x)",
        f"  memoized     {eq['pure_memoized_solves_per_sec']:>12,.0f} solves/s"
        f"  ({eq['pure_memoized_speedup']:.1f}x)",
        f"  mixed cold   {eq['mixed_iterative_solves_per_sec']:>12,.0f} solves/s",
        f"  mixed stream {eq['mixed_solves_per_sec']:>12,.0f} solves/s"
        f"  ({eq['mixed_stream_speedup']:.1f}x, "
        f"warm hit rate {eq['warm_start_hit_rate']:.0%})",
        "",
        f"engine: {engine['events_per_sec']:,.0f} events/s "
        f"(median of {engine['reps']} reps, "
        f"{engine['events_per_rep']} events/rep)",
        f"  snapshot cache: {engine['snapshot_cache']['hits']} hits / "
        f"{engine['snapshot_cache']['misses']} misses",
        f"  equilibrium cache: {engine['equilibrium_cache']['hits']} hits / "
        f"{engine['equilibrium_cache']['misses']} misses "
        f"({engine['equilibrium_cache']['warm_hits']} warm-started)",
        "",
        f"fig13 sweep (jobs=1, {fig13['points']} points): "
        f"{fig13['wall_seconds']:.3f}s "
        f"({1000 * fig13['wall_seconds_per_point']:.2f} ms/point)",
        f"fig14 point (dft, dynamic): "
        f"{1000 * fig14['wall_seconds_per_point']:.2f} ms",
    ]
    speedups = report.get("speedups", {})
    shown = {
        "fig13_wall_vs_seed": "fig13 wall vs seed",
        "engine_events_per_sec_vs_seed": "engine events/s vs seed",
        "equilibrium_mixed_vs_seed": "equilibrium mixed stream vs seed",
        "fig14_point_vs_seed": "fig14 point vs seed",
        "equilibrium_pure_memoized_vs_iterative": "equilibrium memo vs iterative",
    }
    if speedups:
        lines.append("")
        lines.append("speedups:")
        for key, title in shown.items():
            if key in speedups:
                lines.append(f"  {title}: {speedups[key]:.2f}x")
    for row in report.get("profile", []):
        if row["rank"] == 1:
            lines.append("")
            lines.append("profile (top by cumulative time):")
        lines.append(
            f"  #{row['rank']:<2} {row['cumulative_seconds']:.3f}s "
            f"{row['function']} ({row['calls']} calls)"
        )
    return "\n".join(lines)
