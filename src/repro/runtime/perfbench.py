"""Performance microbenchmarks for the simulation engine.

``python -m repro perfbench`` measures four layers and writes
``BENCH_sim.json`` at the repository root (see ``docs/performance.md``
for how to read it):

* **equilibrium** — solves/sec of :func:`effective_concurrency` on a
  pure memory population, three ways: the damped iteration
  (``fast_path=False``, byte-for-byte the seed algorithm), the pure
  closed-form fast path, and the memoized
  :class:`~repro.memory.equilibrium.EquilibriumSolver` hit path the
  engine actually rides.  The iterative number doubles as the honest
  "before", since that code path is unchanged.
* **engine** — end-to-end simulated events/sec of one Figure 13 point
  (offline search, four static-MTL runs), plus the snapshot/equilibrium
  cache hit rates of a direct simulator run (emitted as
  ``snapshot_cache`` telemetry when ``--telemetry`` is given).
* **fig13** — wall-clock of the Figure 13 synthetic sweep at
  ``jobs=1`` (``--quick`` runs a 16-ratio subset; per-point wall makes
  the two comparable).
* **fig14** — wall-clock of one Figure 14 point (``dft`` under the
  dynamic policy).

Numbers for the seed engine live in ``benchmarks/perf/baseline.json``
(``"seed"`` block); the report derives before/after speedups from it.
``--check`` compares measured engine events/sec against the baseline's
``"current"`` block and fails on a >30 % regression — the CI tripwire
that protects the optimization.  ``--profile`` wraps the engine
benchmark in :mod:`cProfile` and reports the top functions by
cumulative time (also as ``profile`` telemetry events).
"""

from __future__ import annotations

import cProfile
import gc
import json
import pathlib
import pstats
import time
from typing import Any, Callable, Dict, List, Optional

from repro.errors import MeasurementError
from repro.memory.equilibrium import (
    EquilibriumSolver,
    MemoryDemand,
    demand_signature,
    effective_concurrency,
)
from repro.runtime.parallel import (
    SweepExecutor,
    SweepPoint,
    build_workload_from_spec,
    run_point,
)
from repro.runtime.telemetry import (
    TelemetryWriter,
    profile_event,
    snapshot_cache_event,
)
from repro.sim.machine import i7_860
from repro.sim.scheduler import FixedMtlPolicy
from repro.sim.simulator import Simulator
from repro.units import mebibytes

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_OUTPUT_PATH",
    "run_perfbench",
    "check_against_baseline",
    "format_report",
]

BENCH_SCHEMA_VERSION = 1

DEFAULT_OUTPUT_PATH = "BENCH_sim.json"
DEFAULT_BASELINE_PATH = "benchmarks/perf/baseline.json"

#: Allowed events/sec regression before ``--check`` fails (the CI gate).
REGRESSION_TOLERANCE = 0.30

#: The fig13 grid (mirrors benchmarks/test_fig13_synthetic_sweep.py).
_FIG13_RATIOS = [round(0.05 * i, 2) for i in range(1, 81)]
_FIG13_PAIRS = 96
_FIG13_FOOTPRINT_MB = 0.5
_I7_LLC = {"capacity_bytes": mebibytes(8), "sharers": 4}

#: Pure population size for the equilibrium microbenchmark.  Large
#: enough (64 contexts — two POWER7 sockets of 8 cores x 4 SMT) that
#: the iterative path's per-solve cost is dominated by real work, not
#: loop setup.
_EQ_POPULATION = 64


def _fig13_point(ratio: float) -> SweepPoint:
    return SweepPoint(
        workload={
            "kind": "synthetic",
            "ratio": ratio,
            "footprint_bytes": mebibytes(_FIG13_FOOTPRINT_MB),
            "pairs": _FIG13_PAIRS,
            "llc": _I7_LLC,
        },
        policy={"kind": "offline"},
        label=f"perfbench/fig13/r={ratio:.2f}",
    )


def _time(fn: Callable[[], Any], reps: int) -> float:
    """Wall-clock seconds for ``reps`` calls of ``fn``."""
    start = time.perf_counter()
    for _ in range(reps):
        fn()
    return time.perf_counter() - start


def _bench_equilibrium(quick: bool) -> Dict[str, Any]:
    """Solves/sec of the three equilibrium paths on fixed populations."""
    machine = i7_860()
    latency_fn = machine.memory.request_latency
    pure = [MemoryDemand(0.0, 1.0) for _ in range(_EQ_POPULATION)]
    mixed = [
        MemoryDemand(0.0 if i % 2 else 1e-3, 0.5 + 0.01 * i)
        for i in range(_EQ_POPULATION)
    ]
    reps = 2_000 if quick else 20_000
    mixed_reps = 500 if quick else 2_000

    iterative = _time(
        lambda: effective_concurrency(pure, latency_fn, fast_path=False), reps
    )
    fast = _time(lambda: effective_concurrency(pure, latency_fn), reps)

    solver = EquilibriumSolver(latency_fn)
    key = demand_signature(pure)
    solver.solve(pure, key=key)  # warm the memo: measure the hit path
    memoized = _time(lambda: solver.solve(pure, key=key), reps)

    mixed_iterative = _time(
        lambda: effective_concurrency(mixed, latency_fn, fast_path=False),
        mixed_reps,
    )
    mixed_key = demand_signature(mixed)
    solver.solve(mixed, key=mixed_key)
    mixed_memoized = _time(
        lambda: solver.solve(mixed, key=mixed_key), mixed_reps
    )

    return {
        "population": _EQ_POPULATION,
        "pure_iterative_solves_per_sec": reps / iterative,
        "pure_fast_path_solves_per_sec": reps / fast,
        "pure_memoized_solves_per_sec": reps / memoized,
        "pure_fast_path_speedup": iterative / fast,
        "pure_memoized_speedup": iterative / memoized,
        "mixed_iterative_solves_per_sec": mixed_reps / mixed_iterative,
        "mixed_memoized_solves_per_sec": mixed_reps / mixed_memoized,
        "mixed_memoized_speedup": mixed_iterative / mixed_memoized,
    }


def _bench_engine(quick: bool) -> Dict[str, Any]:
    """End-to-end events/sec of one fig13 point, plus cache hit rates."""
    point = _fig13_point(1.0)
    reps = 5 if quick else 20
    events = 0
    start = time.perf_counter()
    for _ in range(reps):
        events += run_point(point).sim_events
    wall = time.perf_counter() - start

    # Direct run of the same workload for cache-effectiveness stats
    # (run_point hides its simulator, so instrument one explicitly).
    machine = i7_860()
    program = build_workload_from_spec(dict(point.workload))
    graph = program.to_task_graph()
    simulator = Simulator(machine)
    for mtl in range(1, machine.context_count + 1):
        simulator.run_graph(graph, FixedMtlPolicy(mtl), program.name)
    snapshot_stats = simulator.rate_calculator.cache_info()
    eq = machine.memory.equilibrium_solver()

    return {
        "reps": reps,
        "wall_seconds": wall,
        "events": events,
        "events_per_sec": events / wall,
        "snapshot_cache": snapshot_stats,
        "equilibrium_cache": {
            "hits": eq.hits,
            "misses": eq.misses,
            "entries": len(eq),
        },
    }


def _bench_fig13(quick: bool) -> Dict[str, Any]:
    """Wall-clock of the fig13 sweep at jobs=1 (quick: 16-ratio subset)."""
    ratios = _FIG13_RATIOS[4::5] if quick else _FIG13_RATIOS
    points = [_fig13_point(ratio) for ratio in ratios]
    executor = SweepExecutor(jobs=1)
    start = time.perf_counter()
    results = executor.run(points)
    wall = time.perf_counter() - start
    events = sum(result.sim_events for result in results)
    return {
        "points": len(points),
        "pairs": _FIG13_PAIRS,
        "footprint_mb": _FIG13_FOOTPRINT_MB,
        "wall_seconds": wall,
        "wall_seconds_per_point": wall / len(points),
        "events": events,
        "events_per_sec": events / wall,
    }


def _bench_fig14(quick: bool) -> Dict[str, Any]:
    """Wall-clock of one fig14 point: dft under the dynamic policy."""
    point = SweepPoint(
        workload={"kind": "registry", "name": "dft"},
        policy={"kind": "dynamic"},
        label="perfbench/fig14/dft-dynamic",
    )
    reps = 10 if quick else 50
    events = 0
    start = time.perf_counter()
    for _ in range(reps):
        events += run_point(point).sim_events
    wall = time.perf_counter() - start
    return {
        "reps": reps,
        "wall_seconds_per_point": wall / reps,
        "events": events // reps,
    }


def _profile_engine(quick: bool, top_n: int = 10) -> List[Dict[str, Any]]:
    """cProfile the engine benchmark; top ``top_n`` by cumulative time."""
    profiler = cProfile.Profile()
    profiler.enable()
    _bench_engine(quick)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    rows: List[Dict[str, Any]] = []
    for rank, func in enumerate(stats.fcn_list[:top_n], start=1):
        cc, nc, tt, ct, _callers = stats.stats[func]
        filename, line, name = func
        location = pathlib.Path(filename).name if filename != "~" else "~"
        rows.append(
            {
                "rank": rank,
                "function": f"{location}:{line}({name})",
                "calls": nc,
                "cumulative_seconds": ct,
                "total_seconds": tt,
            }
        )
    return rows


def _load_baseline(path: Optional[str]) -> Optional[Dict[str, Any]]:
    if path is None:
        return None
    baseline_path = pathlib.Path(path)
    if not baseline_path.exists():
        return None
    try:
        payload = json.loads(baseline_path.read_text())
    except json.JSONDecodeError as exc:
        raise MeasurementError(
            f"perf baseline {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise MeasurementError(f"perf baseline {path} must be a JSON object")
    return payload


def _speedups(
    report: Dict[str, Any], baseline: Optional[Dict[str, Any]]
) -> Dict[str, Any]:
    """Before/after ratios against the baseline's seed measurements."""
    speedups: Dict[str, Any] = {
        # Same-run, same-hardware ratio: memo hit vs the unchanged
        # iterative algorithm.
        "equilibrium_pure_memoized_vs_iterative": report["equilibrium"][
            "pure_memoized_speedup"
        ],
    }
    seed = (baseline or {}).get("seed")
    if isinstance(seed, dict):
        per_point = seed.get("fig13_wall_seconds_per_point")
        if per_point:
            speedups["fig13_wall_vs_seed"] = (
                per_point / report["fig13"]["wall_seconds_per_point"]
            )
        seed_eps = seed.get("engine_events_per_sec")
        if seed_eps:
            speedups["engine_events_per_sec_vs_seed"] = (
                report["engine"]["events_per_sec"] / seed_eps
            )
        seed_fig14 = seed.get("fig14_point_wall_seconds")
        if seed_fig14:
            speedups["fig14_point_vs_seed"] = (
                seed_fig14 / report["fig14"]["wall_seconds_per_point"]
            )
    return speedups


def check_against_baseline(
    report: Dict[str, Any], baseline: Optional[Dict[str, Any]]
) -> List[str]:
    """Regression check for CI; returns failure messages (empty = pass).

    Compares measured engine events/sec against the baseline's
    ``current`` block with :data:`REGRESSION_TOLERANCE` headroom.
    """
    if baseline is None:
        return ["no baseline file found; cannot check for regressions"]
    current = baseline.get("current")
    if not isinstance(current, dict) or not current.get("engine_events_per_sec"):
        return ["baseline has no current.engine_events_per_sec to check against"]
    floor = (1.0 - REGRESSION_TOLERANCE) * float(
        current["engine_events_per_sec"]
    )
    measured = report["engine"]["events_per_sec"]
    if measured < floor:
        return [
            f"engine events/sec regressed: measured {measured:.0f} < "
            f"{floor:.0f} (70% of baseline "
            f"{float(current['engine_events_per_sec']):.0f})"
        ]
    return []


def run_perfbench(
    quick: bool = False,
    profile: bool = False,
    baseline_path: Optional[str] = DEFAULT_BASELINE_PATH,
    telemetry: Optional[TelemetryWriter] = None,
) -> Dict[str, Any]:
    """Run every benchmark section and assemble the report dict."""
    baseline = _load_baseline(baseline_path)
    report: Dict[str, Any] = {"schema": BENCH_SCHEMA_VERSION, "quick": quick}
    # Collect between sections so one section's garbage does not tax the
    # next one's measurement (gen-2 scans walk everything still alive).
    for name, bench in (
        ("fig13", _bench_fig13),
        ("fig14", _bench_fig14),
        ("engine", _bench_engine),
        ("equilibrium", _bench_equilibrium),
    ):
        gc.collect()
        report[name] = bench(quick)
    if profile:
        report["profile"] = _profile_engine(quick)
    if baseline is not None:
        report["baseline"] = baseline
    report["speedups"] = _speedups(report, baseline)

    if telemetry is not None:
        engine = report["engine"]
        for cache_name, stats in (
            ("rate_snapshot", engine["snapshot_cache"]),
            ("equilibrium", engine["equilibrium_cache"]),
        ):
            telemetry.emit(
                snapshot_cache_event(
                    cache=cache_name,
                    label="perfbench/engine",
                    hits=stats["hits"],
                    misses=stats["misses"],
                    entries=stats["entries"],
                )
            )
        for row in report.get("profile", []):
            telemetry.emit(
                profile_event(
                    label="perfbench/engine",
                    function=row["function"],
                    rank=row["rank"],
                    calls=row["calls"],
                    cumulative_seconds=row["cumulative_seconds"],
                    total_seconds=row["total_seconds"],
                )
            )
    return report


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of a perfbench report."""
    eq = report["equilibrium"]
    engine = report["engine"]
    fig13 = report["fig13"]
    fig14 = report["fig14"]
    lines = [
        f"perfbench ({'quick' if report['quick'] else 'full'} mode)",
        "",
        f"equilibrium (pure population of {eq['population']}):",
        f"  iterative  {eq['pure_iterative_solves_per_sec']:>12,.0f} solves/s",
        f"  fast path  {eq['pure_fast_path_solves_per_sec']:>12,.0f} solves/s"
        f"  ({eq['pure_fast_path_speedup']:.1f}x)",
        f"  memoized   {eq['pure_memoized_solves_per_sec']:>12,.0f} solves/s"
        f"  ({eq['pure_memoized_speedup']:.1f}x)",
        "",
        f"engine: {engine['events_per_sec']:,.0f} events/s "
        f"({engine['events']} events in {engine['wall_seconds']:.3f}s)",
        f"  snapshot cache: {engine['snapshot_cache']['hits']} hits / "
        f"{engine['snapshot_cache']['misses']} misses",
        f"  equilibrium cache: {engine['equilibrium_cache']['hits']} hits / "
        f"{engine['equilibrium_cache']['misses']} misses",
        "",
        f"fig13 sweep (jobs=1, {fig13['points']} points): "
        f"{fig13['wall_seconds']:.3f}s "
        f"({1000 * fig13['wall_seconds_per_point']:.2f} ms/point)",
        f"fig14 point (dft, dynamic): "
        f"{1000 * fig14['wall_seconds_per_point']:.2f} ms",
    ]
    speedups = report.get("speedups", {})
    shown = {
        "fig13_wall_vs_seed": "fig13 wall vs seed",
        "engine_events_per_sec_vs_seed": "engine events/s vs seed",
        "fig14_point_vs_seed": "fig14 point vs seed",
        "equilibrium_pure_memoized_vs_iterative": "equilibrium memo vs iterative",
    }
    if speedups:
        lines.append("")
        lines.append("speedups:")
        for key, title in shown.items():
            if key in speedups:
                lines.append(f"  {title}: {speedups[key]:.2f}x")
    for row in report.get("profile", []):
        if row["rank"] == 1:
            lines.append("")
            lines.append("profile (top by cumulative time):")
        lines.append(
            f"  #{row['rank']:<2} {row['cumulative_seconds']:.3f}s "
            f"{row['function']} ({row['calls']} calls)"
        )
    return "\n".join(lines)
