"""Structured run telemetry for sweep executions.

Every sweep point executed (or served from cache) by the
:class:`~repro.runtime.parallel.SweepExecutor` emits one JSON object on
its own line — the JSON-lines format that log shippers and ``jq`` both
consume directly.  Eleven event kinds exist:

``point``
    One record per successful sweep point: the content-address of the
    point, the human-readable workload/machine/policy names, the noise
    seed, wall time, whether the result came from the cache, which
    worker process produced it, and the simulated-event counts.

``point_failure``
    One record per sweep point that exhausted its retries — the
    structured degradation the executor carries in-order instead of
    aborting the sweep.

``fault``
    One record per injected fault (worker crash, hang, transient
    error, cache corruption) when a
    :class:`~repro.runtime.faults.FaultPlan` is active.

``retry``
    One record per recovery action: a failed attempt (injected or
    real — transient error, worker crash, timeout) being rescheduled,
    with its deterministic backoff.

``cache_quarantine``
    One record per corrupt cache entry quarantined by
    :class:`~repro.runtime.cache.ResultCache` (renamed to
    ``*.corrupt``, never silently overwritten).

``policy_stat``
    One record per registered policy-plugin counter per successful
    sweep point (emitted by the executor in the parent, after the
    point's ``point`` record): which policy, which stat, its value.

``policy_selection``
    One record per MTL selection a policy plugin reports through its
    selection log (:meth:`~repro.core.plugin.ThrottlePolicyPlugin.selection_log`):
    the simulated time and the committed MTL.

``sweep``
    One trailing summary per executor run: point totals, cache
    hit/miss split, fault/retry/failure counts, and end-to-end wall
    time.

``snapshot_cache``
    One record per simulation run (emitted by the perf benchmarks):
    hit/miss counters and hit rate of one engine cache — the rate
    calculator's snapshot memo or the memory system's equilibrium
    memo (see ``docs/performance.md``).

``equilibrium_warm``
    One record per instrumented run (emitted by the perf benchmarks):
    the :class:`~repro.memory.equilibrium.EquilibriumSolver`'s
    warm-start counters — how many memo misses were warm-started from
    a canonical sibling, how many solved cold, and the iteration work
    the warm starts avoided (see ``docs/performance.md``).

``profile``
    One record per hot function when ``perfbench --profile`` is
    active: its rank in the cProfile top-N plus call counts and
    cumulative/total seconds.

The schema is documented in ``docs/telemetry.md`` and mirrored
machine-readably in :data:`EVENT_SCHEMAS`; a test parses the document
and compares it against :data:`EVENT_SCHEMAS`, so the two cannot
drift.  Records are plain dicts so the writer stays usable from worker
processes and tests without any setup.
"""

from __future__ import annotations

import io
import json
import pathlib
from typing import Any, Dict, List, Optional, TextIO, Tuple, Union

from repro.errors import MeasurementError

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "EVENT_SCHEMAS",
    "TelemetryWriter",
    "point_event",
    "point_failure_event",
    "policy_stat_event",
    "policy_selection_event",
    "fault_event",
    "retry_event",
    "cache_quarantine_event",
    "sweep_event",
    "snapshot_cache_event",
    "equilibrium_warm_event",
    "profile_event",
    "read_telemetry",
    "validate_record",
]

#: Bump when a field is renamed or its meaning changes, so downstream
#: consumers can dispatch on ``record["schema"]``.
TELEMETRY_SCHEMA_VERSION = 1

#: JSON never distinguishes 3 from 3.0, so float-typed fields accept
#: ints too; bool is excluded from numeric fields (it subclasses int).
_STR: Tuple[type, ...] = (str,)
_INT: Tuple[type, ...] = (int,)
_FLOAT: Tuple[type, ...] = (float, int)
_BOOL: Tuple[type, ...] = (bool,)
_OPT_INT: Tuple[type, ...] = (int, type(None))

#: Exact field set and types of every event kind.  ``validate_record``
#: enforces this; ``tests/runtime/test_telemetry_schema.py`` checks it
#: against the tables in ``docs/telemetry.md``.
EVENT_SCHEMAS: Dict[str, Dict[str, Tuple[type, ...]]] = {
    "point": {
        "schema": _INT,
        "event": _STR,
        "key": _STR,
        "label": _STR,
        "workload": _STR,
        "machine": _STR,
        "policy": _STR,
        "seed": _OPT_INT,
        "cache_hit": _BOOL,
        "wall_seconds": _FLOAT,
        "worker": _INT,
        "jobs": _INT,
        "makespan": _FLOAT,
        "sim_events": _INT,
    },
    "point_failure": {
        "schema": _INT,
        "event": _STR,
        "key": _STR,
        "label": _STR,
        "attempts": _INT,
        "reason": _STR,
        "jobs": _INT,
    },
    "fault": {
        "schema": _INT,
        "event": _STR,
        "key": _STR,
        "label": _STR,
        "kind": _STR,
        "attempt": _INT,
        "jobs": _INT,
    },
    "retry": {
        "schema": _INT,
        "event": _STR,
        "key": _STR,
        "label": _STR,
        "attempt": _INT,
        "backoff_seconds": _FLOAT,
        "reason": _STR,
        "jobs": _INT,
    },
    "policy_stat": {
        "schema": _INT,
        "event": _STR,
        "key": _STR,
        "label": _STR,
        "policy": _STR,
        "stat": _STR,
        "value": _FLOAT,
    },
    "policy_selection": {
        "schema": _INT,
        "event": _STR,
        "key": _STR,
        "label": _STR,
        "policy": _STR,
        "time": _FLOAT,
        "selected_mtl": _INT,
    },
    "cache_quarantine": {
        "schema": _INT,
        "event": _STR,
        "key": _STR,
        "path": _STR,
        "reason": _STR,
    },
    "sweep": {
        "schema": _INT,
        "event": _STR,
        "points": _INT,
        "cache_hits": _INT,
        "cache_misses": _INT,
        "faults": _INT,
        "retries": _INT,
        "failures": _INT,
        "wall_seconds": _FLOAT,
        "jobs": _INT,
    },
    "snapshot_cache": {
        "schema": _INT,
        "event": _STR,
        "cache": _STR,
        "label": _STR,
        "hits": _INT,
        "misses": _INT,
        "hit_rate": _FLOAT,
        "entries": _INT,
    },
    "equilibrium_warm": {
        "schema": _INT,
        "event": _STR,
        "label": _STR,
        "warm_hits": _INT,
        "cold_solves": _INT,
        "iterations_saved": _INT,
        "warm_entries": _INT,
        "warm_hit_rate": _FLOAT,
    },
    "profile": {
        "schema": _INT,
        "event": _STR,
        "label": _STR,
        "function": _STR,
        "rank": _INT,
        "calls": _INT,
        "cumulative_seconds": _FLOAT,
        "total_seconds": _FLOAT,
    },
}


def point_event(
    key: str,
    workload: str,
    machine: str,
    policy: str,
    seed: Optional[int],
    cache_hit: bool,
    wall_seconds: float,
    worker: int,
    jobs: int,
    makespan: float,
    sim_events: int,
    label: str = "",
) -> Dict[str, Any]:
    """Build one ``point`` telemetry record."""
    return {
        "schema": TELEMETRY_SCHEMA_VERSION,
        "event": "point",
        "key": key,
        "label": label,
        "workload": workload,
        "machine": machine,
        "policy": policy,
        "seed": seed,
        "cache_hit": cache_hit,
        "wall_seconds": wall_seconds,
        "worker": worker,
        "jobs": jobs,
        "makespan": makespan,
        "sim_events": sim_events,
    }


def point_failure_event(
    key: str,
    label: str,
    attempts: int,
    reason: str,
    jobs: int,
) -> Dict[str, Any]:
    """Build one ``point_failure`` (exhausted retries) record."""
    return {
        "schema": TELEMETRY_SCHEMA_VERSION,
        "event": "point_failure",
        "key": key,
        "label": label,
        "attempts": attempts,
        "reason": reason,
        "jobs": jobs,
    }


def policy_stat_event(
    key: str,
    label: str,
    policy: str,
    stat: str,
    value: float,
) -> Dict[str, Any]:
    """Build one ``policy_stat`` (plugin counter snapshot) record."""
    return {
        "schema": TELEMETRY_SCHEMA_VERSION,
        "event": "policy_stat",
        "key": key,
        "label": label,
        "policy": policy,
        "stat": stat,
        "value": value,
    }


def policy_selection_event(
    key: str,
    label: str,
    policy: str,
    time: float,
    selected_mtl: int,
) -> Dict[str, Any]:
    """Build one ``policy_selection`` (committed MTL decision) record."""
    return {
        "schema": TELEMETRY_SCHEMA_VERSION,
        "event": "policy_selection",
        "key": key,
        "label": label,
        "policy": policy,
        "time": time,
        "selected_mtl": selected_mtl,
    }


def fault_event(
    key: str,
    label: str,
    kind: str,
    attempt: int,
    jobs: int,
) -> Dict[str, Any]:
    """Build one ``fault`` (injected failure) record."""
    return {
        "schema": TELEMETRY_SCHEMA_VERSION,
        "event": "fault",
        "key": key,
        "label": label,
        "kind": kind,
        "attempt": attempt,
        "jobs": jobs,
    }


def retry_event(
    key: str,
    label: str,
    attempt: int,
    backoff_seconds: float,
    reason: str,
    jobs: int,
) -> Dict[str, Any]:
    """Build one ``retry`` (recovery action) record."""
    return {
        "schema": TELEMETRY_SCHEMA_VERSION,
        "event": "retry",
        "key": key,
        "label": label,
        "attempt": attempt,
        "backoff_seconds": backoff_seconds,
        "reason": reason,
        "jobs": jobs,
    }


def cache_quarantine_event(key: str, path: str, reason: str) -> Dict[str, Any]:
    """Build one ``cache_quarantine`` (corrupt entry isolated) record."""
    return {
        "schema": TELEMETRY_SCHEMA_VERSION,
        "event": "cache_quarantine",
        "key": key,
        "path": path,
        "reason": reason,
    }


def sweep_event(
    points: int,
    cache_hits: int,
    cache_misses: int,
    wall_seconds: float,
    jobs: int,
    faults: int = 0,
    retries: int = 0,
    failures: int = 0,
) -> Dict[str, Any]:
    """Build one ``sweep`` summary record."""
    return {
        "schema": TELEMETRY_SCHEMA_VERSION,
        "event": "sweep",
        "points": points,
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
        "faults": faults,
        "retries": retries,
        "failures": failures,
        "wall_seconds": wall_seconds,
        "jobs": jobs,
    }


def snapshot_cache_event(
    cache: str,
    label: str,
    hits: int,
    misses: int,
    entries: int,
) -> Dict[str, Any]:
    """Build one ``snapshot_cache`` (engine cache effectiveness) record.

    ``hit_rate`` is derived here (0.0 when the cache was never
    consulted) so every consumer computes it the same way.
    """
    lookups = hits + misses
    return {
        "schema": TELEMETRY_SCHEMA_VERSION,
        "event": "snapshot_cache",
        "cache": cache,
        "label": label,
        "hits": hits,
        "misses": misses,
        "hit_rate": (hits / lookups) if lookups else 0.0,
        "entries": entries,
    }


def equilibrium_warm_event(
    label: str,
    warm_hits: int,
    cold_solves: int,
    iterations_saved: int,
    warm_entries: int,
) -> Dict[str, Any]:
    """Build one ``equilibrium_warm`` (solver warm-start) record.

    ``warm_hit_rate`` is the fraction of memo *misses* that were
    warm-started from a canonical sibling (0.0 when no miss ever
    reached the solver), derived here so every consumer computes it
    the same way.
    """
    solves = warm_hits + cold_solves
    return {
        "schema": TELEMETRY_SCHEMA_VERSION,
        "event": "equilibrium_warm",
        "label": label,
        "warm_hits": warm_hits,
        "cold_solves": cold_solves,
        "iterations_saved": iterations_saved,
        "warm_entries": warm_entries,
        "warm_hit_rate": (warm_hits / solves) if solves else 0.0,
    }


def profile_event(
    label: str,
    function: str,
    rank: int,
    calls: int,
    cumulative_seconds: float,
    total_seconds: float,
) -> Dict[str, Any]:
    """Build one ``profile`` (cProfile top-N row) record."""
    return {
        "schema": TELEMETRY_SCHEMA_VERSION,
        "event": "profile",
        "label": label,
        "function": function,
        "rank": rank,
        "calls": calls,
        "cumulative_seconds": cumulative_seconds,
        "total_seconds": total_seconds,
    }


def validate_record(record: Any) -> None:
    """Check one telemetry record against :data:`EVENT_SCHEMAS`.

    Raises :class:`~repro.errors.MeasurementError` naming the event
    kind and offending field on any mismatch: unknown event, missing
    field, unexpected field, or wrong type.  Booleans never satisfy a
    numeric field (``bool`` subclasses ``int`` in Python).
    """
    if not isinstance(record, dict):
        raise MeasurementError(
            f"telemetry record must be an object, got {type(record).__name__}"
        )
    event = record.get("event")
    if event not in EVENT_SCHEMAS:
        raise MeasurementError(
            f"unknown telemetry event {event!r}; known: "
            + ", ".join(sorted(EVENT_SCHEMAS))
        )
    schema = EVENT_SCHEMAS[event]
    missing = sorted(set(schema) - set(record))
    if missing:
        raise MeasurementError(f"{event} record is missing fields {missing}")
    extra = sorted(set(record) - set(schema))
    if extra:
        raise MeasurementError(f"{event} record has unexpected fields {extra}")
    for field, allowed in schema.items():
        value = record[field]
        if isinstance(value, bool) and bool not in allowed:
            raise MeasurementError(
                f"{event} field {field!r} must not be a bool, got {value!r}"
            )
        if not isinstance(value, allowed):
            names = "|".join(t.__name__ for t in allowed)
            raise MeasurementError(
                f"{event} field {field!r} must be {names}, got "
                f"{type(value).__name__} {value!r}"
            )


class TelemetryWriter:
    """Append-only JSON-lines sink.

    Accepts a filesystem path (opened lazily in append mode, so several
    sweeps can share one log) or any writable text stream (tests pass a
    :class:`io.StringIO`).  Each :meth:`emit` writes exactly one line
    and flushes, so a crashed run still leaves a readable prefix.
    """

    def __init__(self, sink: Union[str, pathlib.Path, TextIO]) -> None:
        self._path: Optional[pathlib.Path] = None
        self._stream: Optional[TextIO] = None
        if isinstance(sink, (str, pathlib.Path)):
            self._path = pathlib.Path(sink)
        else:
            self._stream = sink

    def emit(self, record: Dict[str, Any]) -> None:
        """Write one record as a single JSON line."""
        line = json.dumps(record, sort_keys=True)
        if self._path is not None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            with self._path.open("a") as handle:
                handle.write(line + "\n")
        else:
            assert self._stream is not None
            self._stream.write(line + "\n")
            if not isinstance(self._stream, io.StringIO):
                self._stream.flush()


def read_telemetry(
    source: Union[str, pathlib.Path, TextIO],
    event: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Parse a JSON-lines telemetry log, optionally filtered by event.

    Blank lines are skipped; a malformed line raises
    :class:`~repro.errors.MeasurementError` naming its line number
    (telemetry is evidence — silently dropping records would hide
    exactly the failures it exists to expose).
    """
    if isinstance(source, (str, pathlib.Path)):
        text = pathlib.Path(source).read_text()
    else:
        text = source.getvalue() if isinstance(source, io.StringIO) else source.read()
    records: List[Dict[str, Any]] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise MeasurementError(
                f"telemetry line {number} is not valid JSON: {exc}"
            ) from exc
        if event is None or record.get("event") == event:
            records.append(record)
    return records
