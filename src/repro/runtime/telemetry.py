"""Structured run telemetry for sweep executions.

Every sweep point executed (or served from cache) by the
:class:`~repro.runtime.parallel.SweepExecutor` emits one JSON object on
its own line — the JSON-lines format that log shippers and ``jq`` both
consume directly.  Two event kinds exist:

``point``
    One record per sweep point: the content-address of the point, the
    human-readable workload/machine/policy names, the noise seed, wall
    time, whether the result came from the cache, which worker process
    produced it, and the simulated-event counts.

``sweep``
    One trailing summary per executor run: point totals, cache
    hit/miss split, and end-to-end wall time.

The schema is documented in ``docs/telemetry.md``; keep the two in
sync.  Records are plain dicts so the writer stays usable from worker
processes and tests without any setup.
"""

from __future__ import annotations

import io
import json
import pathlib
from typing import Any, Dict, List, Optional, TextIO, Union

from repro.errors import MeasurementError

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetryWriter",
    "point_event",
    "sweep_event",
    "read_telemetry",
]

#: Bump when a field is renamed or its meaning changes, so downstream
#: consumers can dispatch on ``record["schema"]``.
TELEMETRY_SCHEMA_VERSION = 1


def point_event(
    key: str,
    workload: str,
    machine: str,
    policy: str,
    seed: Optional[int],
    cache_hit: bool,
    wall_seconds: float,
    worker: int,
    jobs: int,
    makespan: float,
    sim_events: int,
    label: str = "",
) -> Dict[str, Any]:
    """Build one ``point`` telemetry record."""
    return {
        "schema": TELEMETRY_SCHEMA_VERSION,
        "event": "point",
        "key": key,
        "label": label,
        "workload": workload,
        "machine": machine,
        "policy": policy,
        "seed": seed,
        "cache_hit": cache_hit,
        "wall_seconds": wall_seconds,
        "worker": worker,
        "jobs": jobs,
        "makespan": makespan,
        "sim_events": sim_events,
    }


def sweep_event(
    points: int,
    cache_hits: int,
    cache_misses: int,
    wall_seconds: float,
    jobs: int,
) -> Dict[str, Any]:
    """Build one ``sweep`` summary record."""
    return {
        "schema": TELEMETRY_SCHEMA_VERSION,
        "event": "sweep",
        "points": points,
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
        "wall_seconds": wall_seconds,
        "jobs": jobs,
    }


class TelemetryWriter:
    """Append-only JSON-lines sink.

    Accepts a filesystem path (opened lazily in append mode, so several
    sweeps can share one log) or any writable text stream (tests pass a
    :class:`io.StringIO`).  Each :meth:`emit` writes exactly one line
    and flushes, so a crashed run still leaves a readable prefix.
    """

    def __init__(self, sink: Union[str, pathlib.Path, TextIO]) -> None:
        self._path: Optional[pathlib.Path] = None
        self._stream: Optional[TextIO] = None
        if isinstance(sink, (str, pathlib.Path)):
            self._path = pathlib.Path(sink)
        else:
            self._stream = sink

    def emit(self, record: Dict[str, Any]) -> None:
        """Write one record as a single JSON line."""
        line = json.dumps(record, sort_keys=True)
        if self._path is not None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            with self._path.open("a") as handle:
                handle.write(line + "\n")
        else:
            assert self._stream is not None
            self._stream.write(line + "\n")
            if not isinstance(self._stream, io.StringIO):
                self._stream.flush()


def read_telemetry(
    source: Union[str, pathlib.Path, TextIO],
    event: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Parse a JSON-lines telemetry log, optionally filtered by event.

    Blank lines are skipped; a malformed line raises
    :class:`~repro.errors.MeasurementError` naming its line number
    (telemetry is evidence — silently dropping records would hide
    exactly the failures it exists to expose).
    """
    if isinstance(source, (str, pathlib.Path)):
        text = pathlib.Path(source).read_text()
    else:
        text = source.getvalue() if isinstance(source, io.StringIO) else source.read()
    records: List[Dict[str, Any]] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise MeasurementError(
                f"telemetry line {number} is not valid JSON: {exc}"
            ) from exc
        if event is None or record.get("event") == event:
            records.append(record)
    return records
