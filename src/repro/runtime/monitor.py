"""Task-pair monitoring utilities.

The paper's runtime measures individual memory and compute tasks with
``gettimeofday()`` and reasons about *pairs*.  This module provides
the offline counterparts used by experiments and benchmarks: joining a
simulation's task records into pair samples, and measuring a
workload's characteristic ``T_m1 / T_c`` ratio the way Table II/III
were produced (run at MTL = 1, average per-task times).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.phase import PairSample
from repro.errors import MeasurementError
from repro.sim.machine import Machine, i7_860
from repro.sim.results import SimulationResult
from repro.sim.scheduler import FixedMtlPolicy
from repro.sim.simulator import Simulator
from repro.stream.program import StreamProgram

__all__ = ["pair_samples", "measure_ratio", "measure_phase_ratios"]


def pair_samples(
    result: SimulationResult, phase_index: Optional[int] = None
) -> List[PairSample]:
    """Join task records into per-pair ``(T_m, T_c)`` samples.

    Pairs are matched by ``(phase_index, pair_index)``.  Records whose
    counterpart is missing (cannot happen in a completed run) raise
    :class:`~repro.errors.MeasurementError`.
    """
    memory: Dict[Tuple[int, int], float] = {}
    compute: Dict[Tuple[int, int], float] = {}
    for record in result.records:
        if phase_index is not None and record.phase_index != phase_index:
            continue
        key = (record.phase_index, record.pair_index)
        target = memory if record.is_memory else compute
        if key in target:
            raise MeasurementError(f"duplicate {record.kind.value} record for {key}")
        target[key] = record.duration
    if set(memory) != set(compute):
        raise MeasurementError(
            "unpaired task records: "
            f"{sorted(set(memory) ^ set(compute))[:5]}"
        )
    return [
        PairSample(t_m=memory[key], t_c=compute[key]) for key in sorted(memory)
    ]


def measure_ratio(
    program: StreamProgram, machine: Optional[Machine] = None
) -> float:
    """The workload characteristic ``T_m1 / T_c`` (Tables II and III).

    Measured exactly as the paper does: run the whole program at
    MTL = 1 and divide the mean memory-task time by the mean
    compute-task time.
    """
    target = machine if machine is not None else i7_860()
    result = Simulator(target).run(program, FixedMtlPolicy(1))
    return result.mean_memory_duration() / result.mean_compute_duration()


def measure_phase_ratios(
    program: StreamProgram, machine: Optional[Machine] = None
) -> Dict[str, float]:
    """Per-phase ``T_m1 / T_c`` (the Table III breakdown for SIFT)."""
    target = machine if machine is not None else i7_860()
    result = Simulator(target).run(program, FixedMtlPolicy(1))
    ratios: Dict[str, float] = {}
    for index, phase in enumerate(program.phases):
        t_m = result.mean_memory_duration(phase_index=index)
        t_c = result.mean_compute_duration(phase_index=index)
        ratios[phase.name] = t_m / t_c
    return ratios
