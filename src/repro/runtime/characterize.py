"""Workload characterisation reports.

Before deploying the throttler on a new workload, a user wants the
paper's Table II/III view of it: per-phase memory-to-compute ratios,
the IdleBound each phase implies, and what the analytical model
predicts the throttler will do (best MTL and speedup).  This module
produces that report from one MTL=1 profiling run plus the machine's
contention model — no policy simulation required.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.tables import format_percent, format_speedup, render_table
from repro.core.model import AnalyticalModel, predict_speedup_curve
from repro.sim.machine import Machine, i7_860
from repro.sim.scheduler import FixedMtlPolicy
from repro.sim.simulator import Simulator
from repro.stream.program import StreamProgram

__all__ = ["PhaseCharacter", "WorkloadCharacter", "characterize"]


@dataclass(frozen=True)
class PhaseCharacter:
    """Characterisation of one program phase.

    Attributes:
        name: Phase name.
        pair_count: Task pairs in the phase.
        ratio: Measured ``T_m1 / T_c``.
        idle_bound: Minimum MTL at which all cores stay busy.
        predicted_mtl: Analytical best MTL for this phase.
        predicted_speedup: Analytical speedup of that MTL over the
            conventional schedule.
    """

    name: str
    pair_count: int
    ratio: float
    idle_bound: int
    predicted_mtl: int
    predicted_speedup: float


@dataclass(frozen=True)
class WorkloadCharacter:
    """Characterisation of a whole program.

    ``unthrottled_latency_ratio`` is the machine's ``L(n)/L(1)`` — it
    converts phase ratios (stated at MTL=1) to unthrottled memory
    times when composing per-phase predictions into a program-level
    one.
    """

    program_name: str
    machine_name: str
    phases: Tuple[PhaseCharacter, ...]
    unthrottled_latency_ratio: float = 1.0

    @property
    def is_phase_diverse(self) -> bool:
        """Whether phases want different MTLs — the situation where
        *dynamic* throttling beats any static assignment."""
        return len({p.predicted_mtl for p in self.phases}) > 1

    def overall_ratio(self) -> float:
        """Pair-weighted mean ratio across phases."""
        total_pairs = sum(p.pair_count for p in self.phases)
        return (
            sum(p.ratio * p.pair_count for p in self.phases) / total_pairs
        )

    def predicted_program_speedup(self) -> float:
        """Whole-program speedup an ideal dynamic throttler achieves.

        Phases are separated by barriers, so program time is the sum
        of phase times and the ideal dynamic speedup is the
        time-weighted harmonic composition of the per-phase speedups:
        each phase contributes its conventional-schedule share of the
        runtime, shrunk by its own best-MTL speedup.  Monitoring
        overhead is excluded (this is the ceiling the mechanism
        approaches from below).
        """
        conventional_total = 0.0
        throttled_total = 0.0
        for phase in self.phases:
            # Relative conventional phase time: pairs * (T_mn + T_c)
            # with T_c = 1 and T_mn = ratio * L(n)/L(1); only
            # proportions matter across phases.
            weight = phase.pair_count * (
                1.0 + phase.ratio * self.unthrottled_latency_ratio
            )
            conventional_total += weight
            throttled_total += weight / phase.predicted_speedup
        return conventional_total / throttled_total

    def render(self) -> str:
        rows = [
            [
                p.name,
                str(p.pair_count),
                format_percent(p.ratio),
                str(p.idle_bound),
                str(p.predicted_mtl),
                format_speedup(p.predicted_speedup),
            ]
            for p in self.phases
        ]
        table = render_table(
            ["Phase", "pairs", "T_m1/T_c", "IdleBound", "best MTL",
             "pred. speedup"],
            rows,
        )
        verdict = (
            "phase-diverse: dynamic throttling should beat any static MTL"
            if self.is_phase_diverse
            else "uniform: a static MTL suffices"
        )
        return (
            f"{self.program_name} on {self.machine_name} "
            f"(overall ratio {format_percent(self.overall_ratio())})\n"
            f"{table}\n{verdict}"
        )


def characterize(
    program: StreamProgram, machine: Optional[Machine] = None
) -> WorkloadCharacter:
    """Profile a program at MTL=1 and report per-phase characteristics."""
    target = machine if machine is not None else i7_860()
    result = Simulator(target).run(program, FixedMtlPolicy(1))
    model = AnalyticalModel(core_count=target.context_count)
    contention = target.memory.contention

    phases: List[PhaseCharacter] = []
    for index, phase in enumerate(program.phases):
        t_m = result.mean_memory_duration(phase_index=index)
        t_c = result.mean_compute_duration(phase_index=index)
        ratio = t_m / t_c
        prediction = predict_speedup_curve(
            [ratio],
            contention,
            core_count=target.context_count,
            channels=target.memory.channels,
        )[0]
        phases.append(
            PhaseCharacter(
                name=phase.name,
                pair_count=phase.pair_count,
                ratio=ratio,
                idle_bound=model.idle_bound(t_m, t_c),
                predicted_mtl=prediction.best_mtl,
                predicted_speedup=prediction.speedup,
            )
        )
    solo = target.memory.request_latency(1.0)
    loaded = target.memory.request_latency(float(target.context_count))
    return WorkloadCharacter(
        program_name=program.name,
        machine_name=target.name,
        phases=tuple(phases),
        unthrottled_latency_ratio=loaded / solo,
    )
