"""Deterministic fault injection for sweep executions.

A measurement harness is only as trustworthy as its worst case: a
worker that crashes mid-point, hangs forever, raises a transient
error, or leaves a corrupt cache entry behind must never change a
published number.  This module provides the *chaos side* of that
guarantee — a :class:`FaultPlan` that injects exactly those failures,
reproducibly, so the failure-mode tests in
``tests/runtime/test_faults.py`` and the CI chaos job can assert that
a sweep under injected faults converges to rows bit-identical to the
fault-free run.

Determinism contract
--------------------

Every injection decision is a pure function of ``(plan seed, point
key, attempt number)`` hashed through SHA-256 — no wall clock, no
global RNG, no process state.  The same plan against the same sweep
therefore injects the same faults on every run, and ``jobs=1`` replays
are exactly reproducible, fault events included.  (At ``jobs>1`` the
*decisions* are still deterministic per ``(key, attempt)``, but the
interleaving of fault events in the telemetry log follows worker
scheduling, and a crashed worker takes its innocent pool-mates'
in-flight points down with it — they are resubmitted without consuming
one of their own attempts.)

Fault kinds
-----------

``crash``
    The worker process dies abruptly (``os._exit``) — in pool mode
    this breaks the :class:`~concurrent.futures.ProcessPoolExecutor`
    and exercises the executor's pool-respawn path; in serial mode it
    is simulated as an in-process :class:`WorkerCrash`.
``hang``
    The worker sleeps ``hang_seconds`` before running the point — long
    enough to trip the executor's per-point timeout when one is set,
    in which case the attempt is abandoned and retried; with no
    timeout (or ``hang_seconds`` below it) the worker is merely slow
    and the point succeeds without consuming an attempt.  Serial mode
    mirrors both outcomes without sleeping (an in-process hang cannot
    be preempted, and sleeping would only slow the replay): a hang the
    timeout would catch becomes a timeout-equivalent fault, any other
    hang runs the point normally — so ``jobs=1`` and ``jobs=N`` chaos
    runs degrade the same points.
``error``
    The worker raises a transient
    :class:`~repro.errors.MeasurementError`, exercising the bounded
    retry path.
``corrupt``
    The freshly stored cache entry for the point is truncated on disk,
    exercising the cache's quarantine-and-re-verify path on the next
    lookup.  Decided per key (no attempt number) so a corrupted key
    stays corrupted across a whole plan.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError

__all__ = [
    "FAULT_CRASH",
    "FAULT_HANG",
    "FAULT_ERROR",
    "FAULT_CORRUPT",
    "INJECTED_CRASH_EXIT_CODE",
    "FaultPlan",
    "PointFailure",
    "WorkerCrash",
    "backoff_schedule",
]

FAULT_CRASH = "crash"
FAULT_HANG = "hang"
FAULT_ERROR = "error"
FAULT_CORRUPT = "cache_corrupt"

#: Exit code an injected crash kills the worker process with; chosen
#: to be recognisable in CI logs and distinct from Python's own codes.
INJECTED_CRASH_EXIT_CODE = 87


class WorkerCrash(Exception):
    """An injected worker crash, simulated in-process (serial mode)."""


def _uniform(seed: int, salt: str) -> float:
    """Deterministic uniform draw in ``[0, 1)`` from ``(seed, salt)``."""
    digest = hashlib.sha256(f"{seed}|{salt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def backoff_schedule(attempt: int, base: float, cap: float = 30.0) -> float:
    """Deterministic exponential backoff: ``base * 2**attempt``, capped.

    ``attempt`` is the 0-based attempt that just failed, so the first
    retry waits ``base``, the second ``2 * base``, and so on.  No
    jitter on purpose: the schedule must replay identically.
    """
    if attempt < 0:
        raise ConfigurationError(f"attempt must be >= 0, got {attempt}")
    if base <= 0.0:
        return 0.0
    return min(base * (2.0**attempt), cap)


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible fault-injection schedule for one sweep.

    Attributes:
        seed: Plan seed; the only source of variation between plans
            with equal rates.
        crash_rate / hang_rate / error_rate: Per-attempt probability of
            the worker crashing, hanging, or raising a transient error
            before the point runs.  The three partition a single
            uniform draw, so their sum must be <= 1.
        corrupt_rate: Per-key probability that the cache entry written
            for a point is corrupted after the store.
        hang_seconds: How long an injected hang sleeps in a pool
            worker; make it exceed the executor's ``timeout`` to
            exercise the timeout path, keep it below to exercise
            slow-but-recovering workers.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    error_rate: float = 0.0
    corrupt_rate: float = 0.0
    hang_seconds: float = 2.0

    def __post_init__(self) -> None:
        for name in ("crash_rate", "hang_rate", "error_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not isinstance(rate, (int, float)) or isinstance(rate, bool):
                raise ConfigurationError(f"{name} must be a number, got {rate!r}")
            if not 0.0 <= float(rate) <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {rate!r}"
                )
        total = self.crash_rate + self.hang_rate + self.error_rate
        if total > 1.0:
            raise ConfigurationError(
                "crash_rate + hang_rate + error_rate must be <= 1, got "
                f"{total!r}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigurationError(f"seed must be an int, got {self.seed!r}")
        if self.hang_seconds <= 0:
            raise ConfigurationError(
                f"hang_seconds must be > 0, got {self.hang_seconds!r}"
            )

    #: spec-string fields accepted by :meth:`parse`, mapped to the
    #: dataclass attribute and the coercion applied.
    _SPEC_FIELDS = {
        "seed": ("seed", int),
        "crash": ("crash_rate", float),
        "hang": ("hang_rate", float),
        "error": ("error_rate", float),
        "corrupt": ("corrupt_rate", float),
        "hang_seconds": ("hang_seconds", float),
    }

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a CLI fault spec like ``seed=7,crash=0.2,error=0.1``.

        Keys: ``seed``, ``crash``, ``hang``, ``error``, ``corrupt``
        (rates in [0, 1]) and ``hang_seconds``.  Unknown or malformed
        keys raise :class:`~repro.errors.ConfigurationError` naming the
        offender.
        """
        kwargs: Dict[str, Any] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ConfigurationError(
                    f"fault spec entry {part!r} is not of the form key=value"
                )
            key, _, raw = part.partition("=")
            key = key.strip()
            if key not in cls._SPEC_FIELDS:
                raise ConfigurationError(
                    f"unknown fault spec key {key!r}; use "
                    + " | ".join(sorted(cls._SPEC_FIELDS))
                )
            attr, caster = cls._SPEC_FIELDS[key]
            try:
                kwargs[attr] = caster(raw.strip())
            except ValueError:
                raise ConfigurationError(
                    f"fault spec key {key!r} needs a {caster.__name__}, "
                    f"got {raw.strip()!r}"
                ) from None
        return cls(**kwargs)

    def describe(self) -> Dict[str, Any]:
        """JSON-compatible summary (telemetry, debugging)."""
        return {
            "seed": self.seed,
            "crash_rate": self.crash_rate,
            "hang_rate": self.hang_rate,
            "error_rate": self.error_rate,
            "corrupt_rate": self.corrupt_rate,
            "hang_seconds": self.hang_seconds,
        }

    @property
    def injects_execution_faults(self) -> bool:
        return (self.crash_rate + self.hang_rate + self.error_rate) > 0.0

    def decide(self, key: str, attempt: int) -> Optional[str]:
        """The fault (if any) injected into ``(key, attempt)``.

        Returns :data:`FAULT_CRASH`, :data:`FAULT_HANG`,
        :data:`FAULT_ERROR`, or ``None``.  Pure and deterministic; the
        executor calls it parent-side so the telemetry record of every
        injection exists even when the worker dies before reporting.
        """
        if not self.injects_execution_faults:
            return None
        draw = _uniform(self.seed, f"{key}|{attempt}|inject")
        if draw < self.crash_rate:
            return FAULT_CRASH
        if draw < self.crash_rate + self.hang_rate:
            return FAULT_HANG
        if draw < self.crash_rate + self.hang_rate + self.error_rate:
            return FAULT_ERROR
        return None

    def corrupts(self, key: str) -> bool:
        """Whether the cache entry stored for ``key`` gets corrupted."""
        if self.corrupt_rate <= 0.0:
            return False
        return _uniform(self.seed, f"{key}|corrupt") < self.corrupt_rate


@dataclass(frozen=True)
class PointFailure:
    """A sweep point that exhausted its retries.

    Carried in input order through
    :meth:`~repro.runtime.parallel.SweepExecutor.run` results instead
    of aborting the sweep: downstream consumers (suite, experiment,
    CLI) degrade gracefully — they skip the affected rows, record the
    failure, and keep every healthy number bit-identical.

    Attributes:
        label: Echoed from the failed point.
        key: Content-address of the failed point.
        attempts: Total attempts consumed (first try + retries).
        reason: Human-readable cause of the *last* failed attempt.
    """

    label: str
    key: str
    attempts: int
    reason: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "key": self.key,
            "attempts": self.attempts,
            "reason": self.reason,
        }
