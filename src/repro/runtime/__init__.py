"""Runtime services: monitoring, measurement protocol, experiments.

* :mod:`repro.runtime.monitor` — pair-sample extraction and the
  Table II/III ratio measurement;
* :mod:`repro.runtime.measurement` — the 20-run / middle-10 protocol;
* :mod:`repro.runtime.experiment` — policy-comparison harness;
* :mod:`repro.runtime.characterize` — per-phase workload reports with
  model predictions;
* :mod:`repro.runtime.suite` — workloads x machines x policies grids.
"""

from repro.runtime.characterize import (
    PhaseCharacter,
    WorkloadCharacter,
    characterize,
)
from repro.runtime.experiment import (
    ComparisonResult,
    PolicyOutcome,
    compare_policies,
    offline_best_static_factory,
    paper_policy_suite,
)
from repro.runtime.measurement import (
    RepeatedMeasurement,
    measure_makespan,
    middle_mean,
)
from repro.runtime.monitor import measure_phase_ratios, measure_ratio, pair_samples
from repro.runtime.suite import SuiteResult, SuiteRow, run_suite

__all__ = [
    "ComparisonResult",
    "PhaseCharacter",
    "SuiteResult",
    "SuiteRow",
    "WorkloadCharacter",
    "characterize",
    "run_suite",
    "PolicyOutcome",
    "RepeatedMeasurement",
    "compare_policies",
    "measure_makespan",
    "measure_phase_ratios",
    "measure_ratio",
    "middle_mean",
    "offline_best_static_factory",
    "pair_samples",
    "paper_policy_suite",
]
