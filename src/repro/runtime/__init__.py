"""Runtime services: monitoring, measurement protocol, experiments.

* :mod:`repro.runtime.monitor` — pair-sample extraction and the
  Table II/III ratio measurement;
* :mod:`repro.runtime.measurement` — the 20-run / middle-10 protocol;
* :mod:`repro.runtime.experiment` — policy-comparison harness;
* :mod:`repro.runtime.characterize` — per-phase workload reports with
  model predictions;
* :mod:`repro.runtime.suite` — workloads x machines x policies grids;
* :mod:`repro.runtime.parallel` — the parallel sweep executor over
  declarative sweep points;
* :mod:`repro.runtime.cache` — content-addressed on-disk result cache;
* :mod:`repro.runtime.telemetry` — JSON-lines run telemetry;
* :mod:`repro.runtime.faults` — deterministic fault injection and the
  structured :class:`~repro.runtime.faults.PointFailure` degradation.
"""

from repro.runtime.cache import CacheStats, ResultCache, stable_hash
from repro.runtime.faults import FaultPlan, PointFailure, backoff_schedule
from repro.runtime.characterize import (
    PhaseCharacter,
    WorkloadCharacter,
    characterize,
)
from repro.runtime.experiment import (
    ComparisonResult,
    PolicyOutcome,
    all_policy_specs,
    compare_policies,
    compare_policies_grid,
    offline_best_static_factory,
    paper_policy_specs,
    paper_policy_suite,
)
from repro.runtime.measurement import (
    RepeatedMeasurement,
    measure_makespan,
    middle_mean,
)
from repro.runtime.monitor import measure_phase_ratios, measure_ratio, pair_samples
from repro.runtime.parallel import (
    PointResult,
    SweepExecutor,
    SweepPoint,
    point_key,
    run_point,
)
from repro.runtime.suite import SuiteResult, SuiteRow, run_suite, run_suite_grid
from repro.runtime.telemetry import (
    TelemetryWriter,
    read_telemetry,
    validate_record,
)

__all__ = [
    "CacheStats",
    "ComparisonResult",
    "FaultPlan",
    "PhaseCharacter",
    "PointFailure",
    "PointResult",
    "ResultCache",
    "SuiteResult",
    "SuiteRow",
    "SweepExecutor",
    "SweepPoint",
    "TelemetryWriter",
    "WorkloadCharacter",
    "all_policy_specs",
    "backoff_schedule",
    "characterize",
    "compare_policies",
    "compare_policies_grid",
    "measure_makespan",
    "measure_phase_ratios",
    "measure_ratio",
    "middle_mean",
    "offline_best_static_factory",
    "pair_samples",
    "paper_policy_specs",
    "paper_policy_suite",
    "point_key",
    "read_telemetry",
    "run_point",
    "run_suite",
    "run_suite_grid",
    "stable_hash",
    "validate_record",
    "PolicyOutcome",
    "RepeatedMeasurement",
]
