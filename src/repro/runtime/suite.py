"""Batch experiment suites.

Every figure in the paper is a grid: workloads x machines x policies.
:func:`run_suite` executes such a grid in one call and returns tidy
rows ready for tables, CSV, or regression tracking — the harness the
individual benchmarks are special cases of.

Two entry points share the row schema:

* :func:`run_suite` — the in-process API over arbitrary Python
  factories (stateful policies, custom programs);
* :func:`run_suite_grid` — the declarative twin over sweep-point
  specs, executed through a
  :class:`~repro.runtime.parallel.SweepExecutor` so grids parallelise
  across processes and hit the result cache.  The CLI ``suite``
  command goes through this path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, MeasurementError
from repro.runtime.faults import PointFailure
from repro.runtime.parallel import (
    SweepExecutor,
    SweepPoint,
    build_machine_from_spec,
)
from repro.sim.machine import Machine
from repro.sim.scheduler import SchedulingPolicy, conventional_policy
from repro.sim.simulator import Simulator
from repro.stream.program import StreamProgram

__all__ = ["SuiteRow", "SuiteResult", "run_suite", "run_suite_grid"]

PolicyFactory = Callable[[Machine], SchedulingPolicy]
ProgramFactory = Callable[[], StreamProgram]


@dataclass(frozen=True)
class SuiteRow:
    """One (workload, machine, policy) cell of a suite."""

    workload: str
    machine: str
    policy: str
    makespan: float
    speedup: float
    selected_mtl: Optional[int]
    probe_fraction: float


@dataclass(frozen=True)
class SuiteResult:
    """All rows of one suite run.

    Attributes:
        rows: One row per completed (workload, machine, policy) cell.
        failures: Sweep points that exhausted their retries (see
            :class:`~repro.runtime.faults.PointFailure`); their cells
            are absent from ``rows`` rather than aborting the grid.
            Empty on a healthy run.
    """

    rows: Tuple[SuiteRow, ...]
    failures: Tuple[PointFailure, ...] = ()

    def filter(
        self,
        workload: Optional[str] = None,
        machine: Optional[str] = None,
        policy: Optional[str] = None,
    ) -> List[SuiteRow]:
        out = []
        for row in self.rows:
            if workload is not None and row.workload != workload:
                continue
            if machine is not None and row.machine != machine:
                continue
            if policy is not None and row.policy != policy:
                continue
            out.append(row)
        return out

    def cell(self, workload: str, machine: str, policy: str) -> SuiteRow:
        matches = self.filter(workload=workload, machine=machine, policy=policy)
        if len(matches) != 1:
            raise MeasurementError(
                f"expected one cell for ({workload}, {machine}, {policy}), "
                f"found {len(matches)}"
            )
        return matches[0]

    def to_csv(self) -> str:
        lines = [
            "workload,machine,policy,makespan,speedup,selected_mtl,"
            "probe_fraction"
        ]
        for row in self.rows:
            mtl = "" if row.selected_mtl is None else str(row.selected_mtl)
            lines.append(
                f"{row.workload},{row.machine},{row.policy},"
                f"{row.makespan!r},{row.speedup!r},{mtl},"
                f"{row.probe_fraction!r}"
            )
        return "\n".join(lines) + "\n"


def run_suite(
    workloads: Dict[str, ProgramFactory],
    machines: Sequence[Machine],
    policies: Dict[str, PolicyFactory],
) -> SuiteResult:
    """Run the full grid and return tidy rows.

    Speedups are relative to the conventional schedule of the same
    (workload, machine) cell, computed once per cell.  Program and
    policy factories are called fresh per cell — stateful policies
    must never be shared across runs.
    """
    if not workloads or not machines or not policies:
        raise ConfigurationError("suite needs workloads, machines, and policies")
    machine_names = [m.name for m in machines]
    if len(set(machine_names)) != len(machine_names):
        raise ConfigurationError(f"duplicate machine names: {machine_names}")

    rows: List[SuiteRow] = []
    for workload_name, make_program in workloads.items():
        for machine in machines:
            simulator = Simulator(machine)
            baseline = simulator.run(
                make_program(), conventional_policy(machine.context_count)
            ).makespan
            for policy_name, make_policy in policies.items():
                result = simulator.run(make_program(), make_policy(machine))
                try:
                    selected: Optional[int] = result.dominant_mtl()
                except MeasurementError:
                    selected = None
                rows.append(
                    SuiteRow(
                        workload=workload_name,
                        machine=machine.name,
                        policy=policy_name,
                        makespan=result.makespan,
                        speedup=baseline / result.makespan,
                        selected_mtl=selected,
                        probe_fraction=result.probe_task_time_fraction(),
                    )
                )
    return SuiteResult(rows=tuple(rows))


def run_suite_grid(
    workloads: Dict[str, Mapping[str, Any]],
    machines: Sequence[Mapping[str, Any]],
    policies: Dict[str, Mapping[str, Any]],
    executor: Optional[SweepExecutor] = None,
) -> SuiteResult:
    """Run a declarative grid through the sweep executor.

    Args:
        workloads: Name to workload spec (see
            :mod:`repro.runtime.parallel` for the vocabulary).
        machines: Machine specs; names must be distinct.
        policies: Name to policy spec.
        executor: Executor to fan the grid out on; defaults to a
            serial, uncached one (bit-identical to :func:`run_suite`
            on equivalent inputs).

    Every (workload, machine) cell contributes one conventional
    baseline point plus one point per policy; the whole grid is
    submitted as a single batch so parallelism spans cells, not just
    policies.  Rows come back in ``workloads x machines x policies``
    order, matching :func:`run_suite`.

    Degradation: a point that exhausted the executor's retries does
    not abort the grid.  Its cell (or, for a failed baseline, every
    cell of that workload/machine pair — speedups need the baseline)
    is dropped from ``rows`` and recorded in ``failures``.
    """
    if not workloads or not machines or not policies:
        raise ConfigurationError("suite needs workloads, machines, and policies")
    machine_names = [build_machine_from_spec(m).name for m in machines]
    if len(set(machine_names)) != len(machine_names):
        raise ConfigurationError(f"duplicate machine names: {machine_names}")
    runner = executor if executor is not None else SweepExecutor(jobs=1)

    points: List[SweepPoint] = []
    for workload_name, workload_spec in workloads.items():
        for machine_spec in machines:
            points.append(
                SweepPoint(
                    workload=workload_spec,
                    machine=machine_spec,
                    policy={"kind": "conventional"},
                    label=f"{workload_name}/baseline",
                )
            )
            for policy_name, policy_spec in policies.items():
                points.append(
                    SweepPoint(
                        workload=workload_spec,
                        machine=machine_spec,
                        policy=policy_spec,
                        label=f"{workload_name}/{policy_name}",
                    )
                )
    results = runner.run(points)
    failures = tuple(r for r in results if isinstance(r, PointFailure))

    rows: List[SuiteRow] = []
    cursor = 0
    for workload_name in workloads:
        for machine_name in machine_names:
            baseline = results[cursor]
            cursor += 1
            for policy_name in policies:
                result = results[cursor]
                cursor += 1
                if isinstance(baseline, PointFailure) or isinstance(
                    result, PointFailure
                ):
                    continue
                rows.append(
                    SuiteRow(
                        workload=workload_name,
                        machine=machine_name,
                        policy=policy_name,
                        makespan=result.makespan,
                        speedup=baseline.makespan / result.makespan,
                        selected_mtl=result.selected_mtl,
                        probe_fraction=result.probe_fraction,
                    )
                )
    return SuiteResult(rows=tuple(rows), failures=failures)
