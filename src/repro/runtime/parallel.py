"""Parallel sweep execution over declarative sweep points.

Every evaluation figure in the paper is a sweep: a grid of (workload,
machine, policy, seed) configurations, each simulated independently.
This module makes those grids first-class and executable in parallel:

* a :class:`SweepPoint` describes one configuration *declaratively*
  (plain JSON-compatible dicts), so points pickle cleanly into worker
  processes and hash stably into the result cache;
* :func:`run_point` materialises and runs one point — the **single**
  execution path shared verbatim by the serial fallback and the
  process-pool workers, so parallelism can never change numbers;
* :class:`SweepExecutor` fans points out over a
  :class:`concurrent.futures.ProcessPoolExecutor` (or runs them
  in-process at ``jobs=1``), consults an optional
  :class:`~repro.runtime.cache.ResultCache` keyed by
  :func:`point_key`, and emits one telemetry record per point plus a
  sweep summary through an optional
  :class:`~repro.runtime.telemetry.TelemetryWriter`.

Determinism: results are returned in input order regardless of worker
completion order, noise is derived per point from its seed via
:func:`repro.sim.noise.noise_for_seed` inside the process that runs
the point, and cache keys include the schema version, so
``jobs=1`` / ``jobs=N`` / warm-cache replays all yield identical rows.

Spec vocabulary (validated eagerly, offending key named):

==========  =====================================================
workload    ``{"kind": "registry", "name": "dft"}``
            ``{"kind": "synthetic", "ratio": r, "footprint_bytes":
            b, "pairs": p, "llc": {"capacity_bytes": c,
            "sharers": s}}`` (``llc`` optional)
            ``{"kind": "streamcluster", "dimension": d, "rounds":
            r, "pairs_per_round": p}``
            ``{"kind": "spec", "document": {...}}`` (a JSON
            workload spec, :mod:`repro.workloads.spec`)
machine     ``{"preset": "i7_860", "channels": 1, "smt": 1}``
            ``{"preset": "power7", "smt": 4, "channels": 8}``
policy      ``{"kind": "conventional"}``
            ``{"kind": "static", "mtl": k}``
            ``{"kind": "dynamic", "window_pairs": W}``
            ``{"kind": "online", "window_pairs": W}``
            ``{"kind": "offline"}`` (exhaustive static search)
==========  =====================================================
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.offline import offline_exhaustive_search
from repro.core.policies import OnlineExhaustivePolicy
from repro.core.throttle import DynamicThrottlingPolicy
from repro.errors import ConfigurationError, MeasurementError
from repro.memory.cache import LastLevelCache
from repro.runtime.cache import CACHE_SCHEMA_VERSION, ResultCache, stable_hash
from repro.runtime.telemetry import TelemetryWriter, point_event, sweep_event
from repro.sim.machine import Machine, i7_860
from repro.sim.noise import noise_for_seed
from repro.sim.power7 import power7
from repro.sim.scheduler import FixedMtlPolicy, SchedulingPolicy, conventional_policy
from repro.sim.simulator import Simulator
from repro.stream.program import StreamProgram
from repro.workloads import SyntheticWorkload, build_workload
from repro.workloads.spec import parse_workload_spec
from repro.workloads.streamcluster import StreamclusterWorkload

__all__ = [
    "SweepPoint",
    "PointResult",
    "SweepExecutor",
    "point_key",
    "run_point",
    "build_workload_from_spec",
    "build_machine_from_spec",
    "build_policy_from_spec",
]


def _require(spec: Mapping[str, Any], key: str, what: str) -> Any:
    if key not in spec:
        raise ConfigurationError(f"{what} spec {dict(spec)!r} needs a {key!r} key")
    return spec[key]


def build_workload_from_spec(spec: Mapping[str, Any]) -> StreamProgram:
    """Materialise a workload spec into a :class:`StreamProgram`."""
    kind = _require(spec, "kind", "workload")
    if kind == "registry":
        return build_workload(str(_require(spec, "name", "workload")))
    if kind == "synthetic":
        llc = spec.get("llc")
        cache = None
        if llc is not None:
            cache = LastLevelCache(
                capacity_bytes=int(_require(llc, "capacity_bytes", "llc")),
                sharers=int(_require(llc, "sharers", "llc")),
            )
        kwargs: Dict[str, Any] = {"ratio": float(_require(spec, "ratio", "workload"))}
        if "footprint_bytes" in spec:
            kwargs["footprint_bytes"] = int(spec["footprint_bytes"])
        if "pairs" in spec:
            kwargs["pairs"] = int(spec["pairs"])
        return SyntheticWorkload(cache=cache, **kwargs).build()
    if kind == "streamcluster":
        kwargs = {}
        for key in ("dimension", "rounds", "pairs_per_round", "footprint_bytes"):
            if key in spec:
                kwargs[key] = int(spec[key])
        return StreamclusterWorkload(**kwargs).build()
    if kind == "spec":
        return parse_workload_spec(dict(_require(spec, "document", "workload")))
    raise ConfigurationError(
        f"unknown workload kind {kind!r}; use registry | synthetic | "
        "streamcluster | spec"
    )


def build_machine_from_spec(spec: Mapping[str, Any]) -> Machine:
    """Materialise a machine spec into a :class:`Machine`."""
    preset = spec.get("preset", "i7_860")
    if preset == "i7_860":
        kwargs: Dict[str, Any] = {}
        for key in ("channels", "smt", "llc_capacity_bytes"):
            if key in spec:
                kwargs[key] = int(spec[key])
        return i7_860(**kwargs)
    if preset == "power7":
        kwargs = {}
        for key in ("smt", "channels"):
            if key in spec:
                kwargs[key] = int(spec[key])
        return power7(**kwargs)
    raise ConfigurationError(
        f"unknown machine preset {preset!r}; use i7_860 | power7"
    )


def build_policy_from_spec(
    spec: Mapping[str, Any], machine: Machine
) -> SchedulingPolicy:
    """Materialise a policy spec for ``machine``.

    The ``offline`` kind has no single-policy materialisation (it is a
    meta-procedure over every static MTL) and is handled directly by
    :func:`run_point`.
    """
    kind = _require(spec, "kind", "policy")
    n = machine.context_count
    if kind == "conventional":
        return conventional_policy(n)
    if kind == "static":
        return FixedMtlPolicy(int(_require(spec, "mtl", "policy")))
    if kind == "dynamic":
        kwargs: Dict[str, Any] = {"context_count": n}
        if "window_pairs" in spec:
            kwargs["window_pairs"] = int(spec["window_pairs"])
        return DynamicThrottlingPolicy(**kwargs)
    if kind == "online":
        kwargs = {"context_count": n}
        if "window_pairs" in spec:
            kwargs["window_pairs"] = int(spec["window_pairs"])
        return OnlineExhaustivePolicy(**kwargs)
    raise ConfigurationError(
        f"unknown policy kind {kind!r}; use conventional | static | "
        "dynamic | online | offline"
    )


def _frozen(value: Any) -> Any:
    """Deep-freeze a spec so :class:`SweepPoint` stays hashab-free but
    immutable in spirit: nested dicts/lists become plain copies the
    point owns (callers mutating their spec after building points must
    not retroactively change them)."""
    if isinstance(value, Mapping):
        return {str(k): _frozen(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_frozen(v) for v in value]
    return value


@dataclass(frozen=True)
class SweepPoint:
    """One declarative sweep configuration.

    Attributes:
        workload: Workload spec (see module docstring).
        machine: Machine spec; defaults to the paper's 1-DIMM i7-860.
        policy: Policy spec; defaults to the conventional baseline.
        seed: Noise seed; ``None`` runs noise-free (the deterministic
            evaluation mode every figure uses).
        label: Free-form caller bookkeeping carried into telemetry.
            Deliberately **excluded** from the cache key: two labels
            for the same configuration share one cached result.
    """

    workload: Mapping[str, Any]
    machine: Mapping[str, Any] = field(default_factory=lambda: {"preset": "i7_860"})
    policy: Mapping[str, Any] = field(default_factory=lambda: {"kind": "conventional"})
    seed: Optional[int] = None
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "workload", _frozen(self.workload))
        object.__setattr__(self, "machine", _frozen(self.machine))
        object.__setattr__(self, "policy", _frozen(self.policy))
        if self.seed is not None and not isinstance(self.seed, int):
            raise ConfigurationError(f"seed must be an int or None, got {self.seed!r}")

    def describe(self) -> Dict[str, Any]:
        """The content that addresses this point (label excluded)."""
        return {
            "schema": CACHE_SCHEMA_VERSION,
            "workload": self.workload,
            "machine": self.machine,
            "policy": self.policy,
            "seed": self.seed,
        }


def point_key(point: SweepPoint) -> str:
    """Stable content-address of a sweep point."""
    return stable_hash(point.describe())


@dataclass(frozen=True)
class PointResult:
    """Outcome of one executed sweep point (JSON round-trippable).

    Attributes:
        label: Echoed from the point.
        workload / machine / policy: Names as the simulator reports
            them (not the specs — those live on the point).
        seed: The noise seed the run used.
        makespan: Simulated execution time; for ``offline`` points the
            makespan of the best static MTL.
        selected_mtl: Dominant MTL of the run (best MTL for
            ``offline``), ``None`` when no MTL timeline was recorded.
        probe_fraction: Share of task time inside monitoring windows.
        task_count: Simulated task completions.
        sim_events: Task completions plus MTL transitions — the
            "simulated events" figure telemetry reports.
        per_mtl_makespan: For ``offline`` points, every static MTL's
            makespan (the Figure 13 speedup curves need the MTL = n
            baseline); ``None`` otherwise.
    """

    label: str
    workload: str
    machine: str
    policy: str
    seed: Optional[int]
    makespan: float
    selected_mtl: Optional[int]
    probe_fraction: float
    task_count: int
    sim_events: int
    per_mtl_makespan: Optional[Dict[int, float]] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "label": self.label,
            "workload": self.workload,
            "machine": self.machine,
            "policy": self.policy,
            "seed": self.seed,
            "makespan": self.makespan,
            "selected_mtl": self.selected_mtl,
            "probe_fraction": self.probe_fraction,
            "task_count": self.task_count,
            "sim_events": self.sim_events,
        }
        if self.per_mtl_makespan is not None:
            payload["per_mtl_makespan"] = [
                [mtl, span] for mtl, span in sorted(self.per_mtl_makespan.items())
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PointResult":
        per_mtl = payload.get("per_mtl_makespan")
        return cls(
            label=str(payload.get("label", "")),
            workload=str(payload["workload"]),
            machine=str(payload["machine"]),
            policy=str(payload["policy"]),
            seed=payload.get("seed"),
            makespan=float(payload["makespan"]),
            selected_mtl=payload.get("selected_mtl"),
            probe_fraction=float(payload.get("probe_fraction", 0.0)),
            task_count=int(payload.get("task_count", 0)),
            sim_events=int(payload.get("sim_events", 0)),
            per_mtl_makespan=(
                {int(mtl): float(span) for mtl, span in per_mtl}
                if per_mtl is not None
                else None
            ),
        )


def run_point(point: SweepPoint) -> PointResult:
    """Execute one sweep point in the current process.

    This is the single source of truth for per-point execution and
    seeding: the serial fallback calls it directly and the pool workers
    call it inside their processes, so both paths build the workload,
    machine, policy, and noise stream identically from the declarative
    spec.  Noise comes from :func:`repro.sim.noise.noise_for_seed`,
    constructed *here* — RNG state is never pickled across process
    boundaries.
    """
    program = build_workload_from_spec(point.workload)
    machine = build_machine_from_spec(point.machine)
    policy_kind = _require(point.policy, "kind", "policy")

    if policy_kind == "offline":
        noise_factory = (
            (lambda: noise_for_seed(point.seed)) if point.seed is not None else None
        )
        outcome = offline_exhaustive_search(
            program, machine=machine, noise_factory=noise_factory
        )
        best = outcome.best
        return PointResult(
            label=point.label,
            workload=program.name,
            machine=machine.name,
            policy="offline-exhaustive",
            seed=point.seed,
            makespan=best.makespan,
            selected_mtl=outcome.best_mtl,
            probe_fraction=best.probe_task_time_fraction(),
            task_count=best.task_count,
            sim_events=best.task_count + len(best.mtl_changes),
            per_mtl_makespan={
                mtl: result.makespan for mtl, result in outcome.by_mtl.items()
            },
        )

    policy = build_policy_from_spec(point.policy, machine)
    simulator = Simulator(machine, noise=noise_for_seed(point.seed))
    result = simulator.run(program, policy)
    try:
        selected: Optional[int] = result.dominant_mtl()
    except MeasurementError:
        selected = None
    return PointResult(
        label=point.label,
        workload=program.name,
        machine=machine.name,
        policy=policy.name,
        seed=point.seed,
        makespan=result.makespan,
        selected_mtl=selected,
        probe_fraction=result.probe_task_time_fraction(),
        task_count=result.task_count,
        sim_events=result.task_count + len(result.mtl_changes),
    )


def _pool_run_point(point: SweepPoint) -> Tuple[Dict[str, Any], float, int]:
    """Worker-side wrapper: run, time, and identify the worker.

    Returns the result as a plain dict (the same JSON form the cache
    stores) so the parent never depends on dataclass pickling details.
    """
    start = time.perf_counter()
    result = run_point(point)
    return result.to_dict(), time.perf_counter() - start, os.getpid()


class SweepExecutor:
    """Runs sweep points, in parallel when asked, cached when possible.

    Args:
        jobs: Worker processes.  ``1`` (the default) runs every point
            in-process through the exact same :func:`run_point` the
            workers use — the bit-identical serial fallback.
        cache: Optional result cache consulted before running and
            populated after; ``None`` disables caching entirely.
        telemetry: Optional JSON-lines sink receiving one ``point``
            record per point (in input order) and one trailing
            ``sweep`` summary.
        max_inflight: Upper bound on points submitted to the pool at
            once; bounds parent-side memory on very large sweeps.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        telemetry: Optional[TelemetryWriter] = None,
        max_inflight: int = 256,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self.jobs = jobs
        self.cache = cache
        self.telemetry = telemetry
        self.max_inflight = max_inflight

    def run(self, points: Sequence[SweepPoint]) -> List[PointResult]:
        """Execute every point; results come back in input order."""
        sweep_start = time.perf_counter()
        count = len(points)
        results: List[Optional[PointResult]] = [None] * count
        walls: List[float] = [0.0] * count
        workers: List[int] = [os.getpid()] * count
        hits: List[bool] = [False] * count
        keys: List[str] = [point_key(p) for p in points]

        pending: List[int] = []
        for index, key in enumerate(keys):
            if self.cache is not None:
                lookup_start = time.perf_counter()
                cached = self.cache.get(key)
                if cached is not None:
                    results[index] = PointResult.from_dict(cached)
                    walls[index] = time.perf_counter() - lookup_start
                    hits[index] = True
                    continue
            pending.append(index)

        if self.jobs == 1 or len(pending) <= 1:
            for index in pending:
                start = time.perf_counter()
                result = run_point(points[index])
                walls[index] = time.perf_counter() - start
                results[index] = result
                self._store(keys[index], points[index], result)
        else:
            self._run_pool(points, keys, pending, results, walls, workers)

        self._emit_telemetry(
            points, keys, results, walls, workers, hits, sweep_start
        )
        # The type narrows: every slot is filled by one of the paths.
        return [result for result in results if result is not None]

    def _run_pool(
        self,
        points: Sequence[SweepPoint],
        keys: List[str],
        pending: List[int],
        results: List[Optional[PointResult]],
        walls: List[float],
        workers: List[int],
    ) -> None:
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(pending))) as pool:
            queue = list(pending)
            inflight = {}
            while queue or inflight:
                while queue and len(inflight) < self.max_inflight:
                    index = queue.pop(0)
                    inflight[pool.submit(_pool_run_point, points[index])] = index
                done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                for future in done:
                    index = inflight.pop(future)
                    payload, wall, pid = future.result()
                    result = PointResult.from_dict(payload)
                    results[index] = result
                    walls[index] = wall
                    workers[index] = pid
                    self._store(keys[index], points[index], result)

    def _store(self, key: str, point: SweepPoint, result: PointResult) -> None:
        if self.cache is not None:
            self.cache.put(key, result.to_dict(), point=point.describe())

    def _emit_telemetry(
        self,
        points: Sequence[SweepPoint],
        keys: List[str],
        results: List[Optional[PointResult]],
        walls: List[float],
        workers: List[int],
        hits: List[bool],
        sweep_start: float,
    ) -> None:
        if self.telemetry is None:
            return
        for index, point in enumerate(points):
            result = results[index]
            assert result is not None
            self.telemetry.emit(
                point_event(
                    key=keys[index],
                    workload=result.workload,
                    machine=result.machine,
                    policy=result.policy,
                    seed=point.seed,
                    cache_hit=hits[index],
                    wall_seconds=walls[index],
                    worker=workers[index],
                    jobs=self.jobs,
                    makespan=result.makespan,
                    sim_events=result.sim_events,
                    label=point.label,
                )
            )
        hit_count = sum(hits)
        self.telemetry.emit(
            sweep_event(
                points=len(points),
                cache_hits=hit_count,
                cache_misses=len(points) - hit_count,
                wall_seconds=time.perf_counter() - sweep_start,
                jobs=self.jobs,
            )
        )
