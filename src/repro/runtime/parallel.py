"""Parallel sweep execution over declarative sweep points.

Every evaluation figure in the paper is a sweep: a grid of (workload,
machine, policy, seed) configurations, each simulated independently.
This module makes those grids first-class and executable in parallel:

* a :class:`SweepPoint` describes one configuration *declaratively*
  (plain JSON-compatible dicts), so points pickle cleanly into worker
  processes and hash stably into the result cache;
* :func:`run_point` materialises and runs one point — the **single**
  execution path shared verbatim by the serial fallback and the
  process-pool workers, so parallelism can never change numbers;
* :class:`SweepExecutor` fans points out over a
  :class:`concurrent.futures.ProcessPoolExecutor` (or runs them
  in-process at ``jobs=1``), consults an optional
  :class:`~repro.runtime.cache.ResultCache` keyed by
  :func:`point_key`, and emits one telemetry record per point plus a
  sweep summary through an optional
  :class:`~repro.runtime.telemetry.TelemetryWriter`.

Resilience: the executor tolerates crashing, hanging, and
transiently-failing workers without changing a single number.  Each
point gets a per-point ``timeout`` (pool mode), bounded ``retries``
with a deterministic exponential backoff schedule
(:func:`~repro.runtime.faults.backoff_schedule`), and the worker pool
is respawned when a dead worker breaks it
(:class:`~concurrent.futures.process.BrokenProcessPool`).  A point
that exhausts its retries degrades gracefully into a structured
:class:`~repro.runtime.faults.PointFailure` carried in input order
through the results — the sweep never aborts.  Every fault, retry,
and degradation is emitted through the telemetry writer.  Failures
are injected deterministically for testing via a
:class:`~repro.runtime.faults.FaultPlan` (see
``docs/fault_injection.md``).

Determinism: results are returned in input order regardless of worker
completion order, noise is derived per point from its seed via
:func:`repro.sim.noise.noise_for_seed` inside the process that runs
the point, and cache keys include the schema version, so
``jobs=1`` / ``jobs=N`` / warm-cache replays / chaos runs under an
exhausting-resistant retry budget all yield identical rows.

Spec vocabulary (validated eagerly, offending key named):

==========  =====================================================
workload    ``{"kind": "registry", "name": "dft"}``
            ``{"kind": "synthetic", "ratio": r, "footprint_bytes":
            b, "pairs": p, "llc": {"capacity_bytes": c,
            "sharers": s}}`` (``llc`` optional)
            ``{"kind": "streamcluster", "dimension": d, "rounds":
            r, "pairs_per_round": p}``
            ``{"kind": "spec", "document": {...}}`` (a JSON
            workload spec, :mod:`repro.workloads.spec`)
machine     ``{"preset": "i7_860", "channels": 1, "smt": 1}``
            ``{"preset": "power7", "smt": 4, "channels": 8}``
policy      ``{"kind": "<registered name>", **params}`` — any name
            in :func:`repro.core.registry.policy_names`:
            ``conventional``, ``static`` (needs ``mtl``),
            ``dynamic`` / ``online`` / ``mise`` / ``qos``
            (``window_pairs``...), ``adaptive-window``,
            ``activation-budget``; parameters are validated against
            the registry entry (offending key named).
            ``{"kind": "offline"}`` (exhaustive static search) is
            the one non-registry kind, handled by :func:`run_point`.
==========  =====================================================
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.offline import offline_exhaustive_search
from repro.core.registry import build_policy
from repro.errors import ConfigurationError, MeasurementError
from repro.memory.cache import LastLevelCache
from repro.runtime.cache import CACHE_SCHEMA_VERSION, ResultCache, stable_hash
from repro.runtime.faults import (
    FAULT_CORRUPT,
    FAULT_CRASH,
    FAULT_ERROR,
    FAULT_HANG,
    INJECTED_CRASH_EXIT_CODE,
    FaultPlan,
    PointFailure,
    backoff_schedule,
)
from repro.runtime.telemetry import (
    TelemetryWriter,
    fault_event,
    point_event,
    point_failure_event,
    policy_stat_event,
    retry_event,
    sweep_event,
)
from repro.sim.machine import Machine, i7_860
from repro.sim.noise import noise_for_seed
from repro.sim.power7 import power7
from repro.sim.scheduler import SchedulingPolicy
from repro.sim.simulator import Simulator
from repro.stream.program import StreamProgram
from repro.workloads import SyntheticWorkload, build_workload
from repro.workloads.spec import parse_workload_spec
from repro.workloads.streamcluster import StreamclusterWorkload

__all__ = [
    "POOL_BOUNDARY",
    "SweepPoint",
    "PointResult",
    "PointFailure",
    "SweepExecutor",
    "point_key",
    "run_point",
    "build_workload_from_spec",
    "build_machine_from_spec",
    "build_policy_from_spec",
]

#: Functions that execute inside pool worker processes.  This is the
#: machine-readable annotation of the process-pool boundary: the
#: pool-safety lint rules (RPR7xx) treat every function listed here —
#: and everything reachable from it — as worker-side code that must
#: pickle cleanly, never mutate module globals, and never emit
#: telemetry directly.
POOL_BOUNDARY: Tuple[str, ...] = ("_pool_run_point",)

#: Consecutive pool breaks with no injected crash in flight tolerated
#: before the executor gives up (a real, repeating environment
#: failure — OOM killer, container teardown — must surface, not loop).
_MAX_UNATTRIBUTED_POOL_BREAKS = 3


def _require(spec: Mapping[str, Any], key: str, what: str) -> Any:
    if key not in spec:
        raise ConfigurationError(f"{what} spec {dict(spec)!r} needs a {key!r} key")
    return spec[key]


def _as_int(value: Any, key: str, what: str) -> int:
    """Validate an int-typed spec value, naming the offending key."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            f"{what} spec key {key!r} must be an int, got {value!r}"
        )
    return value


def _as_float(value: Any, key: str, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"{what} spec key {key!r} must be a number, got {value!r}"
        )
    return float(value)


def _as_str(value: Any, key: str, what: str) -> str:
    if not isinstance(value, str):
        raise ConfigurationError(
            f"{what} spec key {key!r} must be a string, got {value!r}"
        )
    return value


def _as_mapping(value: Any, key: str, what: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise ConfigurationError(
            f"{what} spec key {key!r} must be an object, got {value!r}"
        )
    return value


def build_workload_from_spec(spec: Mapping[str, Any]) -> StreamProgram:
    """Materialise a workload spec into a :class:`StreamProgram`."""
    kind = _require(spec, "kind", "workload")
    if kind == "registry":
        return build_workload(_as_str(_require(spec, "name", "workload"), "name", "workload"))
    if kind == "synthetic":
        llc = spec.get("llc")
        cache = None
        if llc is not None:
            llc = _as_mapping(llc, "llc", "workload")
            cache = LastLevelCache(
                capacity_bytes=_as_int(
                    _require(llc, "capacity_bytes", "llc"), "capacity_bytes", "llc"
                ),
                sharers=_as_int(_require(llc, "sharers", "llc"), "sharers", "llc"),
            )
        kwargs: Dict[str, Any] = {
            "ratio": _as_float(_require(spec, "ratio", "workload"), "ratio", "workload")
        }
        for key in ("footprint_bytes", "pairs"):
            if key in spec:
                kwargs[key] = _as_int(spec[key], key, "workload")
        return SyntheticWorkload(cache=cache, **kwargs).build()
    if kind == "streamcluster":
        kwargs = {}
        for key in ("dimension", "rounds", "pairs_per_round", "footprint_bytes"):
            if key in spec:
                kwargs[key] = _as_int(spec[key], key, "workload")
        return StreamclusterWorkload(**kwargs).build()
    if kind == "spec":
        document = _as_mapping(
            _require(spec, "document", "workload"), "document", "workload"
        )
        return parse_workload_spec(dict(document))
    raise ConfigurationError(
        f"unknown workload kind {kind!r}; use registry | synthetic | "
        "streamcluster | spec"
    )


def build_machine_from_spec(spec: Mapping[str, Any]) -> Machine:
    """Materialise a machine spec into a :class:`Machine`."""
    preset = spec.get("preset", "i7_860")
    if preset == "i7_860":
        kwargs: Dict[str, Any] = {}
        for key in ("channels", "smt", "llc_capacity_bytes"):
            if key in spec:
                kwargs[key] = _as_int(spec[key], key, "machine")
        return i7_860(**kwargs)
    if preset == "power7":
        kwargs = {}
        for key in ("smt", "channels"):
            if key in spec:
                kwargs[key] = _as_int(spec[key], key, "machine")
        return power7(**kwargs)
    raise ConfigurationError(
        f"unknown machine preset {preset!r}; use i7_860 | power7"
    )


def build_policy_from_spec(
    spec: Mapping[str, Any], machine: Machine
) -> SchedulingPolicy:
    """Materialise a policy spec for ``machine``.

    The ``offline`` kind has no single-policy materialisation (it is a
    meta-procedure over every static MTL) and is handled directly by
    :func:`run_point`.
    """
    kind = _require(spec, "kind", "policy")
    params = {key: value for key, value in spec.items() if key != "kind"}
    return build_policy(kind, machine.context_count, params)


def _frozen(value: Any) -> Any:
    """Deep-freeze a spec so :class:`SweepPoint` stays hashab-free but
    immutable in spirit: nested dicts/lists become plain copies the
    point owns (callers mutating their spec after building points must
    not retroactively change them)."""
    if isinstance(value, Mapping):
        return {str(k): _frozen(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_frozen(v) for v in value]
    return value


@dataclass(frozen=True)
class SweepPoint:
    """One declarative sweep configuration.

    Attributes:
        workload: Workload spec (see module docstring).
        machine: Machine spec; defaults to the paper's 1-DIMM i7-860.
        policy: Policy spec; defaults to the conventional baseline.
        seed: Noise seed; ``None`` runs noise-free (the deterministic
            evaluation mode every figure uses).
        label: Free-form caller bookkeeping carried into telemetry.
            Deliberately **excluded** from the cache key: two labels
            for the same configuration share one cached result.
    """

    workload: Mapping[str, Any]
    machine: Mapping[str, Any] = field(default_factory=lambda: {"preset": "i7_860"})
    policy: Mapping[str, Any] = field(default_factory=lambda: {"kind": "conventional"})
    seed: Optional[int] = None
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "workload", _frozen(self.workload))
        object.__setattr__(self, "machine", _frozen(self.machine))
        object.__setattr__(self, "policy", _frozen(self.policy))
        if self.seed is not None and not isinstance(self.seed, int):
            raise ConfigurationError(f"seed must be an int or None, got {self.seed!r}")

    def describe(self) -> Dict[str, Any]:
        """The content that addresses this point (label excluded)."""
        return {
            "schema": CACHE_SCHEMA_VERSION,
            "workload": self.workload,
            "machine": self.machine,
            "policy": self.policy,
            "seed": self.seed,
        }


def point_key(point: SweepPoint) -> str:
    """Stable content-address of a sweep point."""
    return stable_hash(point.describe())


@dataclass(frozen=True)
class PointResult:
    """Outcome of one executed sweep point (JSON round-trippable).

    Attributes:
        label: Echoed from the point.
        workload / machine / policy: Names as the simulator reports
            them (not the specs — those live on the point).
        seed: The noise seed the run used.
        makespan: Simulated execution time; for ``offline`` points the
            makespan of the best static MTL.
        selected_mtl: Dominant MTL of the run (best MTL for
            ``offline``), ``None`` when no MTL timeline was recorded.
        probe_fraction: Share of task time inside monitoring windows.
        task_count: Simulated task completions.
        sim_events: Task completions plus MTL transitions — the
            "simulated events" figure telemetry reports.
        per_mtl_makespan: For ``offline`` points, every static MTL's
            makespan (the Figure 13 speedup curves need the MTL = n
            baseline); ``None`` otherwise.
        policy_stats: The policy plugin's registered-counter snapshot
            (:meth:`~repro.core.plugin.ThrottlePolicyPlugin.stats_snapshot`);
            ``None`` for ``offline`` points, which run a meta-procedure
            rather than one policy instance.
    """

    label: str
    workload: str
    machine: str
    policy: str
    seed: Optional[int]
    makespan: float
    selected_mtl: Optional[int]
    probe_fraction: float
    task_count: int
    sim_events: int
    per_mtl_makespan: Optional[Dict[int, float]] = None
    policy_stats: Optional[Dict[str, float]] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "label": self.label,
            "workload": self.workload,
            "machine": self.machine,
            "policy": self.policy,
            "seed": self.seed,
            "makespan": self.makespan,
            "selected_mtl": self.selected_mtl,
            "probe_fraction": self.probe_fraction,
            "task_count": self.task_count,
            "sim_events": self.sim_events,
        }
        if self.per_mtl_makespan is not None:
            payload["per_mtl_makespan"] = [
                [mtl, span] for mtl, span in sorted(self.per_mtl_makespan.items())
            ]
        if self.policy_stats is not None:
            payload["policy_stats"] = [
                [stat, value] for stat, value in sorted(self.policy_stats.items())
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PointResult":
        per_mtl = payload.get("per_mtl_makespan")
        stats = payload.get("policy_stats")
        return cls(
            label=str(payload.get("label", "")),
            workload=str(payload["workload"]),
            machine=str(payload["machine"]),
            policy=str(payload["policy"]),
            seed=payload.get("seed"),
            makespan=float(payload["makespan"]),
            selected_mtl=payload.get("selected_mtl"),
            probe_fraction=float(payload.get("probe_fraction", 0.0)),
            task_count=int(payload.get("task_count", 0)),
            sim_events=int(payload.get("sim_events", 0)),
            per_mtl_makespan=(
                {int(mtl): float(span) for mtl, span in per_mtl}
                if per_mtl is not None
                else None
            ),
            policy_stats=(
                {str(stat): float(value) for stat, value in stats}
                if stats is not None
                else None
            ),
        )


def run_point(point: SweepPoint) -> PointResult:
    """Execute one sweep point in the current process.

    This is the single source of truth for per-point execution and
    seeding: the serial fallback calls it directly and the pool workers
    call it inside their processes, so both paths build the workload,
    machine, policy, and noise stream identically from the declarative
    spec.  Noise comes from :func:`repro.sim.noise.noise_for_seed`,
    constructed *here* — RNG state is never pickled across process
    boundaries.
    """
    program = build_workload_from_spec(point.workload)
    machine = build_machine_from_spec(point.machine)
    policy_kind = _require(point.policy, "kind", "policy")

    if policy_kind == "offline":
        noise_factory = (
            (lambda: noise_for_seed(point.seed)) if point.seed is not None else None
        )
        outcome = offline_exhaustive_search(
            program, machine=machine, noise_factory=noise_factory
        )
        best = outcome.best
        return PointResult(
            label=point.label,
            workload=program.name,
            machine=machine.name,
            policy="offline-exhaustive",
            seed=point.seed,
            makespan=best.makespan,
            selected_mtl=outcome.best_mtl,
            probe_fraction=best.probe_task_time_fraction(),
            task_count=best.task_count,
            sim_events=best.task_count + len(best.mtl_changes),
            per_mtl_makespan={
                mtl: result.makespan for mtl, result in outcome.by_mtl.items()
            },
        )

    policy = build_policy_from_spec(point.policy, machine)
    simulator = Simulator(machine, noise=noise_for_seed(point.seed))
    result = simulator.run(program, policy)
    try:
        selected: Optional[int] = result.dominant_mtl()
    except MeasurementError:
        selected = None
    snapshot = getattr(policy, "stats_snapshot", None)
    return PointResult(
        label=point.label,
        workload=program.name,
        machine=machine.name,
        policy=policy.name,
        seed=point.seed,
        makespan=result.makespan,
        selected_mtl=selected,
        probe_fraction=result.probe_task_time_fraction(),
        task_count=result.task_count,
        sim_events=result.task_count + len(result.mtl_changes),
        policy_stats=dict(snapshot()) if callable(snapshot) else None,
    )


def _pool_run_point(
    point: SweepPoint,
    inject: Optional[str] = None,
    hang_seconds: float = 0.0,
) -> Tuple[Dict[str, Any], float, int]:
    """Worker-side wrapper: run, time, and identify the worker.

    Returns the result as a plain dict (the same JSON form the cache
    stores) so the parent never depends on dataclass pickling details.
    ``inject`` applies the fault the parent decided for this attempt:
    an abrupt process death, a pre-run sleep, or a transient error —
    applied *here*, in the worker, so the parent's recovery machinery
    is exercised exactly as a real failure would.
    """
    if inject == FAULT_CRASH:
        os._exit(INJECTED_CRASH_EXIT_CODE)
    if inject == FAULT_ERROR:
        raise MeasurementError(
            f"injected transient error for point {point.label!r}"
        )
    if inject == FAULT_HANG and hang_seconds > 0.0:
        time.sleep(hang_seconds)
    start = time.perf_counter()
    result = run_point(point)
    return result.to_dict(), time.perf_counter() - start, os.getpid()


class SweepExecutor:
    """Runs sweep points, in parallel when asked, cached when possible.

    Args:
        jobs: Worker processes.  ``1`` (the default) runs every point
            in-process through the exact same :func:`run_point` the
            workers use — the bit-identical serial fallback.
        cache: Optional result cache consulted before running and
            populated after; ``None`` disables caching entirely.
        telemetry: Optional JSON-lines sink receiving one ``point`` or
            ``point_failure`` record per point (in input order), live
            ``fault``/``retry``/``cache_quarantine`` records as they
            happen, and one trailing ``sweep`` summary.
        max_inflight: Upper bound on points submitted to the pool at
            once; bounds parent-side memory on very large sweeps.
        timeout: Per-point wall-clock budget in seconds.  In pool mode
            a point exceeding it is abandoned and retried; ``None``
            disables.  An in-process point cannot be preempted, so at
            ``jobs=1`` the budget only governs injected hangs: a hang
            the timeout would catch (``hang_seconds >= timeout``)
            consumes an attempt exactly as it would in a pool worker.
        retries: Retry budget per point beyond the first attempt.  A
            point that exhausts it becomes a
            :class:`~repro.runtime.faults.PointFailure` in the results
            instead of aborting the sweep.
        backoff_base: First-retry backoff in seconds, doubled each
            further retry (deterministic schedule, no jitter —
            :func:`~repro.runtime.faults.backoff_schedule`).  ``0``
            (the default) retries immediately.
        fault_plan: Deterministic chaos injection for testing; see
            :mod:`repro.runtime.faults`.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        telemetry: Optional[TelemetryWriter] = None,
        max_inflight: int = 256,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff_base: float = 0.0,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if timeout is not None and timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {timeout}")
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {retries}")
        if backoff_base < 0:
            raise ConfigurationError(
                f"backoff_base must be >= 0, got {backoff_base}"
            )
        self.jobs = jobs
        self.cache = cache
        self.telemetry = telemetry
        self.max_inflight = max_inflight
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.fault_plan = fault_plan

    def run(
        self, points: Sequence[SweepPoint]
    ) -> List[Union[PointResult, PointFailure]]:
        """Execute every point; results come back in input order.

        A point that exhausts its retries yields a
        :class:`~repro.runtime.faults.PointFailure` in its slot; all
        other slots are :class:`PointResult`.  With the default
        configuration (no fault plan, no timeout) failures can only
        arise from points that raise
        :class:`~repro.errors.MeasurementError` persistently.
        """
        # Quarantines are part of the run's story; route them into the
        # same log unless the cache already has its own sink — for this
        # run only.  The cache is caller-owned and possibly shared:
        # it must come back exactly as it went in.
        routed = (
            self.cache is not None
            and self.telemetry is not None
            and self.cache.telemetry is None
        )
        if routed:
            self.cache.telemetry = self.telemetry
        try:
            return self._run(points)
        finally:
            if routed:
                self.cache.telemetry = None

    def _run(
        self, points: Sequence[SweepPoint]
    ) -> List[Union[PointResult, PointFailure]]:
        sweep_start = time.perf_counter()
        count = len(points)
        results: List[Optional[Union[PointResult, PointFailure]]] = [None] * count
        walls: List[float] = [0.0] * count
        workers: List[int] = [os.getpid()] * count
        hits: List[bool] = [False] * count
        keys: List[str] = [point_key(p) for p in points]
        counts = {"faults": 0, "retries": 0, "failures": 0}

        pending: List[int] = []
        for index, key in enumerate(keys):
            if self.cache is not None:
                lookup_start = time.perf_counter()
                cached = self.cache.get(key)
                if cached is not None:
                    results[index] = PointResult.from_dict(cached)
                    walls[index] = time.perf_counter() - lookup_start
                    hits[index] = True
                    continue
            pending.append(index)

        if self.jobs == 1 or len(pending) <= 1:
            self._run_serial(points, keys, pending, results, walls, counts)
        else:
            self._run_pool(points, keys, pending, results, walls, workers, counts)

        self._emit_telemetry(
            points, keys, results, walls, workers, hits, sweep_start, counts
        )
        # The type narrows: every slot is filled by one of the paths.
        return [result for result in results if result is not None]

    # ------------------------------------------------------------------
    # serial path

    def _run_serial(
        self,
        points: Sequence[SweepPoint],
        keys: List[str],
        pending: List[int],
        results: List[Optional[Union[PointResult, PointFailure]]],
        walls: List[float],
        counts: Dict[str, int],
    ) -> None:
        for index in pending:
            start = time.perf_counter()
            outcome = self._attempt_serial(points[index], keys[index], counts)
            walls[index] = time.perf_counter() - start
            results[index] = outcome
            if isinstance(outcome, PointResult):
                self._store(keys[index], points[index], outcome, counts)

    def _attempt_serial(
        self, point: SweepPoint, key: str, counts: Dict[str, int]
    ) -> Union[PointResult, PointFailure]:
        """Run one point in-process with the full retry discipline.

        Injected crashes and transient errors are simulated as
        exceptions.  An injected hang mirrors what the pool would do
        with it: when the executor's ``timeout`` would catch it
        (``hang_seconds >= timeout``) it becomes a timeout-equivalent
        failed attempt — without sleeping, since an in-process hang
        could never be preempted and sleeping would only slow the
        replay — and otherwise the worker would simply have been slow
        and succeeded, so the point runs normally (again without
        sleeping) and no retry is consumed.  Either way ``jobs=1`` and
        ``jobs=N`` chaos runs degrade the same points.
        """
        attempt = 0
        while True:
            fault = (
                self.fault_plan.decide(key, attempt)
                if self.fault_plan is not None
                else None
            )
            if fault is not None:
                self._note_fault(key, point.label, fault, attempt, counts)
            if fault == FAULT_HANG and not (
                self.timeout is not None
                and self.fault_plan.hang_seconds >= self.timeout
            ):
                fault = None  # slow but recovering: the pool would wait it out
            if fault is not None:
                reason = {
                    FAULT_CRASH: "worker crashed (injected)",
                    FAULT_HANG: "timeout (injected hang)",
                    FAULT_ERROR: "injected transient error for point "
                    f"{point.label!r}",
                }[fault]
            else:
                try:
                    return run_point(point)
                except MeasurementError as exc:
                    reason = str(exc)
            if attempt >= self.retries:
                counts["failures"] += 1
                return PointFailure(
                    label=point.label, key=key, attempts=attempt + 1, reason=reason
                )
            backoff = self._note_retry(key, point.label, attempt, reason, counts)
            if backoff > 0.0:
                time.sleep(backoff)
            attempt += 1

    # ------------------------------------------------------------------
    # pool path

    def _run_pool(
        self,
        points: Sequence[SweepPoint],
        keys: List[str],
        pending: List[int],
        results: List[Optional[Union[PointResult, PointFailure]]],
        walls: List[float],
        workers: List[int],
        counts: Dict[str, int],
    ) -> None:
        queue: Deque[int] = deque(pending)
        attempts: Dict[int, int] = {index: 0 for index in pending}
        not_before: Dict[int, float] = {}
        predicted: Dict[Future, Optional[str]] = {}
        inflight: Dict[Future, int] = {}
        deadlines: Dict[Future, float] = {}
        capacity = min(self.jobs, len(pending))
        pool = ProcessPoolExecutor(max_workers=capacity)
        unattributed_breaks = 0

        def recover(index: int, reason: str) -> None:
            """A failed attempt: retry with backoff or degrade."""
            attempt = attempts[index]
            if attempt >= self.retries:
                counts["failures"] += 1
                results[index] = PointFailure(
                    label=points[index].label,
                    key=keys[index],
                    attempts=attempt + 1,
                    reason=reason,
                )
                return
            backoff = self._note_retry(
                keys[index], points[index].label, attempt, reason, counts
            )
            attempts[index] = attempt + 1
            if backoff > 0.0:
                not_before[index] = time.monotonic() + backoff
            queue.append(index)

        def requeue_after_break(index: int, fault: Optional[str]) -> None:
            """Resubmit a point lost to a broken pool.

            Only the point whose injected crash killed the worker
            consumed an attempt; innocent pool-mates are resubmitted
            for free — their loss is pool mechanics, not their fault.
            """
            if fault == FAULT_CRASH:
                recover(index, "worker crashed (injected)")
            else:
                queue.append(index)

        try:
            while queue or inflight:
                now = time.monotonic()
                # With a timeout, a submitted point's deadline starts
                # ticking immediately — so never submit more points
                # than the pool has workers, or a point queued behind
                # a slow worker burns its budget (and its attempts)
                # without ever starting.
                limit = (
                    self.max_inflight
                    if self.timeout is None
                    else min(self.max_inflight, capacity)
                )
                while queue and len(inflight) < limit:
                    # Backing-off points must not block eligible ones
                    # queued behind them: submit the first *eligible*
                    # point, not the head.
                    slot = next(
                        (
                            offset
                            for offset, candidate in enumerate(queue)
                            if not_before.get(candidate, 0.0) <= now
                        ),
                        None,
                    )
                    if slot is None:
                        break
                    index = queue[slot]
                    del queue[slot]
                    not_before.pop(index, None)
                    fault = (
                        self.fault_plan.decide(keys[index], attempts[index])
                        if self.fault_plan is not None
                        else None
                    )
                    if fault is not None:
                        self._note_fault(
                            keys[index], points[index].label, fault,
                            attempts[index], counts,
                        )
                    hang = (
                        self.fault_plan.hang_seconds
                        if self.fault_plan is not None
                        else 0.0
                    )
                    future = pool.submit(
                        _pool_run_point, points[index], fault, hang
                    )
                    predicted[future] = fault
                    inflight[future] = index
                    if self.timeout is not None:
                        deadlines[future] = time.monotonic() + self.timeout

                if not inflight:
                    # The submit scan found nothing eligible, so every
                    # queued point is backing off; sleep until the
                    # earliest becomes eligible and resume.
                    wake = min(not_before[i] for i in queue if i in not_before)
                    time.sleep(max(0.0, wake - time.monotonic()))
                    continue

                wait_timeout = None
                if deadlines:
                    wait_timeout = (
                        max(0.0, min(deadlines.values()) - time.monotonic()) + 0.01
                    )
                done, _ = wait(
                    set(inflight), timeout=wait_timeout,
                    return_when=FIRST_COMPLETED,
                )

                broken = False
                crash_predicted_inflight = any(
                    predicted.get(f) == FAULT_CRASH for f in inflight
                )
                for future in done:
                    index = inflight.pop(future)
                    deadlines.pop(future, None)
                    fault = predicted.pop(future, None)
                    try:
                        payload, wall, pid = future.result()
                    except BrokenProcessPool:
                        broken = True
                        requeue_after_break(index, fault)
                    except MeasurementError as exc:
                        recover(index, str(exc))
                    else:
                        result = PointResult.from_dict(payload)
                        results[index] = result
                        walls[index] = wall
                        workers[index] = pid
                        self._store(keys[index], points[index], result, counts)
                        # A completed point proves the (possibly
                        # respawned) pool works: the strike counter
                        # tracks *consecutive* breaks, so occasional
                        # breaks hours apart on a long sweep never
                        # accumulate into a spurious abort.
                        unattributed_breaks = 0

                if broken:
                    if not crash_predicted_inflight:
                        unattributed_breaks += 1
                        if unattributed_breaks > _MAX_UNATTRIBUTED_POOL_BREAKS:
                            raise MeasurementError(
                                "worker pool broke "
                                f"{unattributed_breaks} times with no "
                                "injected crash in flight; giving up on a "
                                "failing environment"
                            )
                    for future, index in list(inflight.items()):
                        requeue_after_break(index, predicted.pop(future, None))
                    inflight.clear()
                    deadlines.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    capacity = min(self.jobs, max(1, len(queue)))
                    pool = ProcessPoolExecutor(max_workers=capacity)
                elif deadlines:
                    now = time.monotonic()
                    overdue = [f for f, d in deadlines.items() if d <= now]
                    if overdue:
                        for future in overdue:
                            index = inflight.pop(future)
                            deadlines.pop(future, None)
                            fault = predicted.pop(future, None)
                            recover(
                                index,
                                "timeout (injected hang)"
                                if fault == FAULT_HANG
                                else f"timeout after {self.timeout:g}s",
                            )
                        # A stuck worker cannot be preempted and would
                        # keep holding its pool slot (starving every
                        # queued point into its own timeout), so the
                        # whole pool is killed and respawned.  Innocent
                        # in-flight points are resubmitted without
                        # consuming an attempt; the rerun produces the
                        # same bits — run_point is deterministic.  Their
                        # abandoned futures' deadlines go with them: a
                        # stale deadline expiring later would look like
                        # an overdue future that is no longer in flight.
                        for future, index in list(inflight.items()):
                            predicted.pop(future, None)
                            queue.append(index)
                        inflight.clear()
                        deadlines.clear()
                        pool.shutdown(wait=False, cancel_futures=True)
                        for process in list(
                            (getattr(pool, "_processes", None) or {}).values()
                        ):
                            try:
                                process.kill()
                            except (OSError, ValueError):
                                # Already dead (ProcessLookupError) or
                                # already closed (ValueError): the goal
                                # — that worker not holding a slot — is
                                # achieved either way.
                                pass
                        capacity = min(self.jobs, max(1, len(queue)))
                        pool = ProcessPoolExecutor(max_workers=capacity)
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    # ------------------------------------------------------------------
    # shared helpers

    def _store(
        self,
        key: str,
        point: SweepPoint,
        result: PointResult,
        counts: Dict[str, int],
    ) -> None:
        if self.cache is None:
            return
        self.cache.put(key, result.to_dict(), point=point.describe())
        if self.fault_plan is not None and self.fault_plan.corrupts(key):
            try:
                self.cache.path_for(key).write_text('{"schema": ')
            except OSError:
                return
            self._note_fault(key, point.label, FAULT_CORRUPT, 0, counts)

    def _note_fault(
        self, key: str, label: str, kind: str, attempt: int, counts: Dict[str, int]
    ) -> None:
        counts["faults"] += 1
        if self.telemetry is not None:
            self.telemetry.emit(
                fault_event(
                    key=key, label=label, kind=kind, attempt=attempt,
                    jobs=self.jobs,
                )
            )

    def _note_retry(
        self, key: str, label: str, attempt: int, reason: str, counts: Dict[str, int]
    ) -> float:
        """Record one retry; returns its deterministic backoff."""
        backoff = backoff_schedule(attempt, self.backoff_base)
        counts["retries"] += 1
        if self.telemetry is not None:
            self.telemetry.emit(
                retry_event(
                    key=key, label=label, attempt=attempt,
                    backoff_seconds=backoff, reason=reason, jobs=self.jobs,
                )
            )
        return backoff

    def _emit_telemetry(
        self,
        points: Sequence[SweepPoint],
        keys: List[str],
        results: List[Optional[Union[PointResult, PointFailure]]],
        walls: List[float],
        workers: List[int],
        hits: List[bool],
        sweep_start: float,
        counts: Dict[str, int],
    ) -> None:
        if self.telemetry is None:
            return
        for index, point in enumerate(points):
            result = results[index]
            assert result is not None
            if isinstance(result, PointFailure):
                self.telemetry.emit(
                    point_failure_event(
                        key=keys[index],
                        label=result.label,
                        attempts=result.attempts,
                        reason=result.reason,
                        jobs=self.jobs,
                    )
                )
                continue
            self.telemetry.emit(
                point_event(
                    key=keys[index],
                    workload=result.workload,
                    machine=result.machine,
                    policy=result.policy,
                    seed=point.seed,
                    cache_hit=hits[index],
                    wall_seconds=walls[index],
                    worker=workers[index],
                    jobs=self.jobs,
                    makespan=result.makespan,
                    sim_events=result.sim_events,
                    label=point.label,
                )
            )
            if result.policy_stats:
                for stat, value in sorted(result.policy_stats.items()):
                    self.telemetry.emit(
                        policy_stat_event(
                            key=keys[index],
                            label=point.label,
                            policy=result.policy,
                            stat=stat,
                            value=value,
                        )
                    )
        hit_count = sum(hits)
        self.telemetry.emit(
            sweep_event(
                points=len(points),
                cache_hits=hit_count,
                cache_misses=len(points) - hit_count,
                wall_seconds=time.perf_counter() - sweep_start,
                jobs=self.jobs,
                faults=counts["faults"],
                retries=counts["retries"],
                failures=counts["failures"],
            )
        )
